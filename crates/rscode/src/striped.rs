//! Striped Reed-Solomon coding of arbitrary-length byte values.
//!
//! The paper represents a `D`-bit generation value as `k = n - 2t` data
//! symbols of `D / (n - 2t)` bits each, encoded with `C_2t` over a field
//! large enough to hold one symbol. We instead fix the field at GF(2^16)
//! and run `s = ceil(chunk_bytes / 2)` *interleaved* codewords ("stripes"):
//! stripe `j` encodes the `j`-th 16-bit element of every data chunk. A
//! codeword position then carries one 16-bit element per stripe, which
//! together form one paper-symbol of `chunk_bytes * 8` logical bits.
//!
//! Equality of two symbols, consistency of a symbol set, and decoding all
//! behave exactly as in the paper because they hold iff they hold
//! stripe-wise.

use mvbc_gf::{kernels, mul_rows_prepared, Field, Gf65536, PreparedMul65536};

use crate::{CodeError, ReedSolomon, Symbol};

/// Minimum stripes per worker band before sharding pays: below ~16 KiB
/// of stripe data per row the spawn cost dominates the kernel.
const SHARD_MIN_STRIPES: usize = 8192;

/// Minimum stripes before the prepared byte-table path pays for its
/// table builds; matches the byte-table tier of the `mvbc_gf` packed
/// kernels. Below this the generic coefficient path (which picks the
/// log-domain or nibble tier itself) is used.
const PREPARED_MIN_STRIPES: usize = 1024;

/// Stripes per cache block of the prepared path: 2 KiB of data per
/// source slice, so all `k` source blocks plus one destination block
/// and the active row's tables stay L1-resident while every output row
/// sweeps over the block.
const BLOCK_STRIPES: usize = 1024;

/// Prepared-table working sets larger than this (64 KiB of tables)
/// would thrash while cycling rows inside each block; fall back to
/// row-major full-band sweeps, which keep exactly one row's tables
/// hot.
const BLOCKED_TABLE_BUDGET: usize = 64;

/// Splits every destination row at the same contiguous stripe
/// boundaries (via repeated `split_at_mut`; `stripes = shards * base +
/// rem`, the first `rem` bands one stripe longer) and returns one
/// `(stripe_range, row_bands)` entry per worker.
fn shard_bands<'a>(
    dsts: &'a mut [&mut [Gf65536]],
    shards: usize,
) -> Vec<(std::ops::Range<usize>, Vec<&'a mut [Gf65536]>)> {
    let stripes = dsts.first().map_or(0, |d| d.len());
    let rows = dsts.len();
    let base = stripes / shards;
    let rem = stripes % shards;
    let band_len = |w: usize| base + usize::from(w < rem);
    let mut bands: Vec<Vec<&mut [Gf65536]>> =
        (0..shards).map(|_| Vec::with_capacity(rows)).collect();
    for dst in dsts.iter_mut() {
        let mut rest: &mut [Gf65536] = dst;
        for (w, band) in bands.iter_mut().enumerate() {
            let (head, tail) = rest.split_at_mut(band_len(w));
            band.push(head);
            rest = tail;
        }
    }
    let mut lo = 0usize;
    bands
        .into_iter()
        .enumerate()
        .map(|(w, band)| {
            let hi = lo + band_len(w);
            let range = lo..hi;
            lo = hi;
            (range, band)
        })
        .collect()
}

/// Applies matrix rows to a set of sources, stripe-sharded:
/// `dsts[r][s] += Σ_j rows[r][j] * srcs[j][s]`.
///
/// This is the generic-coefficient loop behind the small-value paths
/// of encode, consistency verification, reconstruct-decode, and
/// symbol extension (large values take [`apply_rows_prepared`]). With
/// `shards > 1` the stripe range is partitioned into contiguous bands
/// and each scoped worker owns one band of *every* row. Each element
/// is still computed exactly once, by exactly one worker, with the
/// same operations in the same order as the serial loop — so output
/// bytes are identical for every worker count. The `shards <= 1`
/// branch is the executable specification; the pool-size-invariance
/// test in `tests/codec_equivalence.rs` pins the equality.
fn apply_rows(
    rows: &[&[Gf65536]],
    srcs: &[&[Gf65536]],
    dsts: &mut [&mut [Gf65536]],
    shards: usize,
) {
    assert_eq!(rows.len(), dsts.len(), "apply_rows shape mismatch");
    let stripes = dsts.first().map_or(0, |d| d.len());
    let shards = shards.clamp(1, (stripes / SHARD_MIN_STRIPES).max(1));
    if shards <= 1 {
        for (coeffs, dst) in rows.iter().zip(dsts.iter_mut()) {
            kernels::addmul_rows(coeffs, srcs, dst);
        }
        return;
    }
    std::thread::scope(|scope| {
        for (range, band) in shard_bands(dsts, shards) {
            scope.spawn(move || {
                let src_band: Vec<&[Gf65536]> =
                    srcs.iter().map(|s| &s[range.clone()]).collect();
                for (coeffs, dst) in rows.iter().zip(band) {
                    kernels::addmul_rows(coeffs, &src_band, dst);
                }
            });
        }
    });
}

/// The prepared-table twin of [`apply_rows`], for byte-table-tier
/// values: `dsts[r][s] = Σ_j tables[r * k + j] * srcs[j][s]`
/// (overwrite — every caller hands freshly zeroed destinations).
///
/// Beyond sharing [`apply_rows`]' banding (and its byte-identical
/// output for every worker count), each band is swept in
/// [`BLOCK_STRIPES`]-sized cache blocks with the row loop *inside* the
/// block loop: all `k` source blocks stay L1-resident while every
/// output row consumes them, instead of re-streaming each source from
/// L2 once per row. The prepared tables are built (or fetched from the
/// generator cache) exactly once per call, not once per row
/// application.
fn apply_rows_prepared(
    tables: &[PreparedMul65536],
    k: usize,
    srcs: &[&[Gf65536]],
    dsts: &mut [&mut [Gf65536]],
    shards: usize,
) {
    assert_eq!(tables.len(), dsts.len() * k, "apply_rows_prepared shape mismatch");
    let stripes = dsts.first().map_or(0, |d| d.len());
    let shards = shards.clamp(1, (stripes / SHARD_MIN_STRIPES).max(1));
    if shards <= 1 {
        apply_band_prepared(tables, k, srcs, dsts);
        return;
    }
    std::thread::scope(|scope| {
        for (range, mut band) in shard_bands(dsts, shards) {
            scope.spawn(move || {
                let src_band: Vec<&[Gf65536]> =
                    srcs.iter().map(|s| &s[range.clone()]).collect();
                apply_band_prepared(tables, k, &src_band, &mut band);
            });
        }
    });
}

/// Process-wide cache of prepared generator tables, keyed by `(n, k)`.
///
/// The generator matrix is a pure function of the geometry (canonical
/// evaluation points `alpha(0..n)`), so its `n·k` byte split tables —
/// 510 log/exp products each to build — are shared across every
/// [`StripedCode`] instance ever constructed with that geometry (e.g.
/// the per-slot codes of an SMR run). Entries are `n·k` KiB; the cap
/// only guards against pathological geometry churn.
fn gen_tables(rs: &ReedSolomon<Gf65536>, n: usize, k: usize) -> std::sync::Arc<Vec<PreparedMul65536>> {
    use std::collections::HashMap;
    use std::sync::{Arc, OnceLock, RwLock};
    // mvbc-lint: allow(determinism.hash_state): keyed-access-only memo cache; never iterated, so its order is unobservable and cannot reach a trace or report
    type GenMap = HashMap<(usize, usize), Arc<Vec<PreparedMul65536>>>;
    const GEN_CACHE_CAP: usize = 64;
    static CACHE: OnceLock<RwLock<GenMap>> = OnceLock::new();
    // mvbc-lint: allow(determinism.hash_state): same keyed-access-only cache as GenMap above
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    {
        let map = cache.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(entry) = map.get(&(n, k)) {
            return entry.clone();
        }
    }
    let built: Arc<Vec<PreparedMul65536>> = Arc::new(
        (0..n)
            .flat_map(|pos| rs.gen_row(pos).iter().map(|&c| PreparedMul65536::new(c)))
            .collect(),
    );
    let mut map = cache.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    if map.len() >= GEN_CACHE_CAP {
        map.clear();
    }
    map.entry((n, k)).or_insert_with(|| built.clone()).clone()
}

/// Serial, cache-blocked sweep of one stripe band (the whole range
/// when unsharded).
fn apply_band_prepared(
    tables: &[PreparedMul65536],
    k: usize,
    srcs: &[&[Gf65536]],
    dsts: &mut [&mut [Gf65536]],
) {
    let stripes = dsts.first().map_or(0, |d| d.len());
    if tables.len() > BLOCKED_TABLE_BUDGET {
        for (row_tables, dst) in tables.chunks(k).zip(dsts.iter_mut()) {
            mul_rows_prepared(row_tables, srcs, dst);
        }
        return;
    }
    let mut lo = 0usize;
    while lo < stripes {
        let hi = (lo + BLOCK_STRIPES).min(stripes);
        let src_block: Vec<&[Gf65536]> = srcs.iter().map(|s| &s[lo..hi]).collect();
        for (row_tables, dst) in tables.chunks(k).zip(dsts.iter_mut()) {
            mul_rows_prepared(row_tables, &src_block, &mut dst[lo..hi]);
        }
        lo = hi;
    }
}

/// Geometry of a striped code: how a byte value maps onto symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripedLayout {
    /// Codeword length (number of processors `n`).
    pub n: usize,
    /// Code dimension (`n - 2t`).
    pub k: usize,
    /// Size of the encoded value in bytes.
    pub value_bytes: usize,
    /// Bytes of the value carried by each data symbol (`ceil(value/k)`).
    pub chunk_bytes: usize,
    /// Number of interleaved GF(2^16) codewords.
    pub stripes: usize,
}

/// A Reed-Solomon code over GF(2^16) striped across byte values.
///
/// # Examples
///
/// ```
/// use mvbc_rscode::StripedCode;
///
/// // n = 7 processors, t = 2 faults, 100-byte generation values.
/// let code = StripedCode::c2t(7, 2, 100)?;
/// let value = vec![0xabu8; 100];
/// let symbols = code.encode_value(&value)?;
/// assert_eq!(symbols.len(), 7);
/// // Decode from any k = 3 symbols.
/// let picks: Vec<_> = symbols.iter().cloned().enumerate().take(3).collect();
/// assert_eq!(code.decode_value(&picks)?, value);
/// # Ok::<(), mvbc_rscode::CodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StripedCode {
    layout: StripedLayout,
    rs: ReedSolomon<Gf65536>,
    /// Explicit worker-count override; `None` defers to the process-wide
    /// [`crate::codec_threads`] knob.
    threads: Option<usize>,
}

impl StripedCode {
    /// Creates a striped `(n, k)` code for values of `value_bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] for an invalid `(n, k)` pair
    /// or a zero-length value.
    pub fn new(n: usize, k: usize, value_bytes: usize) -> Result<Self, CodeError> {
        if value_bytes == 0 {
            return Err(CodeError::InvalidParameters {
                n,
                k,
                field_order: Gf65536::ORDER,
            });
        }
        let rs = ReedSolomon::new(n, k)?;
        let chunk_bytes = value_bytes.div_ceil(k);
        let stripes = chunk_bytes.div_ceil(2);
        Ok(StripedCode {
            layout: StripedLayout {
                n,
                k,
                value_bytes,
                chunk_bytes,
                stripes,
            },
            rs,
            threads: None,
        })
    }

    /// Creates the paper's `C_2t` striped code: `(n, n - 2t)`.
    ///
    /// # Errors
    ///
    /// Same as [`StripedCode::new`].
    pub fn c2t(n: usize, t: usize, value_bytes: usize) -> Result<Self, CodeError> {
        let k = n.saturating_sub(2 * t);
        Self::new(n, k, value_bytes)
    }

    /// Overrides the worker count used to shard stripe-range kernels.
    ///
    /// `1` reproduces the fully serial loops. The count only bounds how
    /// many contiguous stripe bands are worked concurrently; encoded
    /// and decoded bytes are identical for every value (pinned by the
    /// pool-size-invariance test in the equivalence suite). Without an
    /// override the process-wide [`crate::codec_threads`] knob applies.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "codec threads must be at least 1");
        self.threads = Some(threads);
        self
    }

    /// The effective worker count for this code's sharded kernels.
    fn shards(&self) -> usize {
        self.threads.unwrap_or_else(crate::threads::codec_threads)
    }

    /// Applies coefficient rows through the prepared cache-blocked path
    /// when the value is in byte-table territory, or the generic
    /// coefficient path otherwise. Identical bytes either way — the
    /// tiers differ only in table build strategy and sweep order.
    fn apply(&self, rows: &[&[Gf65536]], srcs: &[&[Gf65536]], dsts: &mut [&mut [Gf65536]]) {
        if self.layout.stripes >= PREPARED_MIN_STRIPES {
            let tables: Vec<PreparedMul65536> = rows
                .iter()
                .flat_map(|row| row.iter().map(|&c| PreparedMul65536::new(c)))
                .collect();
            apply_rows_prepared(&tables, self.layout.k, srcs, dsts, self.shards());
        } else {
            apply_rows(rows, srcs, dsts, self.shards());
        }
    }

    /// The code geometry.
    pub fn layout(&self) -> StripedLayout {
        self.layout
    }

    /// Logical bits carried by one coded symbol (the paper's
    /// `D / (n - 2t)`).
    pub fn symbol_bits(&self) -> u64 {
        self.layout.chunk_bytes as u64 * 8
    }

    /// The underlying single-codeword Reed-Solomon code.
    pub(crate) fn rs(&self) -> &ReedSolomon<Gf65536> {
        &self.rs
    }

    /// Splits (and zero-pads) a value into `k` chunks of stripe elements,
    /// reading straight out of `value` (no padded intermediate copy).
    fn chunks(&self, value: &[u8]) -> Vec<Vec<Gf65536>> {
        let l = &self.layout;
        (0..l.k)
            .map(|ci| {
                let base = ci * l.chunk_bytes;
                let end = (base + l.chunk_bytes).min(value.len());
                let body = value.get(base..end).unwrap_or(&[]);
                let mut out = Vec::with_capacity(l.stripes);
                let mut pairs = body.chunks_exact(2);
                out.extend(
                    pairs
                        .by_ref()
                        .map(|p| Gf65536::new(u16::from_be_bytes([p[0], p[1]]))),
                );
                // Stay within this chunk: an odd chunk's (or the value's)
                // final stripe pads with a zero byte, not the first byte
                // of the next chunk.
                if let &[b0] = pairs.remainder() {
                    out.push(Gf65536::new(u16::from_be_bytes([b0, 0])));
                }
                out.resize(l.stripes, Gf65536::ZERO);
                out
            })
            .collect()
    }

    /// Encodes a value into `n` coded symbols (line 1(a) of Algorithm 1).
    ///
    /// Applies the precomputed generator matrix stripe-parallel: each
    /// output row is one fused [`kernels::addmul_rows`] application of
    /// its generator row across all stripes at once (instead of Horner
    /// evaluation per stripe), sharded into contiguous stripe bands
    /// when the configured worker count and value size allow.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongDataLength`] when
    /// `value.len() != value_bytes`.
    pub fn encode_value(&self, value: &[u8]) -> Result<Vec<Symbol>, CodeError> {
        let l = &self.layout;
        if value.len() != l.value_bytes {
            return Err(CodeError::WrongDataLength {
                expected: l.value_bytes,
                got: value.len(),
            });
        }
        let chunks = self.chunks(value);
        let srcs: Vec<&[Gf65536]> = chunks.iter().map(Vec::as_slice).collect();
        let mut out: Vec<Vec<Gf65536>> = vec![vec![Gf65536::ZERO; l.stripes]; l.n];
        let mut dsts: Vec<&mut [Gf65536]> = out.iter_mut().map(Vec::as_mut_slice).collect();
        if l.stripes >= PREPARED_MIN_STRIPES {
            // The generator tables are fixed per geometry: fetch them
            // from the process-wide cache instead of rebuilding.
            let tables = gen_tables(&self.rs, l.n, l.k);
            apply_rows_prepared(&tables, l.k, &srcs, &mut dsts, self.shards());
        } else {
            let rows: Vec<&[Gf65536]> = (0..l.n).map(|pos| self.rs.gen_row(pos)).collect();
            apply_rows(&rows, &srcs, &mut dsts, self.shards());
        }
        Ok(out
            .into_iter()
            .map(|elems| Symbol::new(elems, self.symbol_bits()))
            .collect())
    }

    /// Checks the supplied symbols have the expected stripe count and valid,
    /// non-duplicated positions.
    pub(crate) fn validate_shape(&self, symbols: &[(usize, Symbol)]) -> Result<(), CodeError> {
        let l = &self.layout;
        let mut seen = vec![false; l.n];
        for (pos, sym) in symbols {
            if *pos >= l.n || seen[*pos] {
                return Err(CodeError::BadPosition { position: *pos });
            }
            seen[*pos] = true;
            if sym.stripes() != l.stripes {
                return Err(CodeError::WrongDataLength {
                    expected: l.stripes,
                    got: sym.stripes(),
                });
            }
        }
        Ok(())
    }

    fn stripe_pairs(&self, symbols: &[(usize, Symbol)], s: usize) -> Vec<(usize, Gf65536)> {
        symbols.iter().map(|(pos, sym)| (*pos, sym.elems()[s])).collect()
    }

    /// The cached interpolation weights for the first `k` supplied
    /// symbols' positions, after basic shape validation.
    fn weights(
        &self,
        symbols: &[(usize, Symbol)],
    ) -> Result<std::sync::Arc<crate::weights::InterpWeights<Gf65536>>, CodeError> {
        let l = &self.layout;
        if symbols.len() < l.k {
            return Err(CodeError::NotEnoughSymbols {
                needed: l.k,
                got: symbols.len(),
            });
        }
        let positions: Vec<usize> = symbols[..l.k].iter().map(|&(pos, _)| pos).collect();
        Ok(self.rs.interp_weights(&positions))
    }

    /// Verifies every symbol beyond the first `k` against the cached
    /// polynomial of the first `k`, stripe-parallel: one fused (and
    /// possibly sharded) extension-row application per extra symbol
    /// into one flat scratch buffer, then a straight comparison.
    fn verify_extras(
        &self,
        w: &crate::weights::InterpWeights<Gf65536>,
        symbols: &[(usize, Symbol)],
        scratch: &mut Vec<Gf65536>,
    ) -> Result<(), CodeError> {
        let l = &self.layout;
        let extras = symbols.len() - l.k;
        if extras == 0 {
            return Ok(());
        }
        scratch.clear();
        scratch.resize(extras * l.stripes, Gf65536::ZERO);
        let srcs: Vec<&[Gf65536]> = symbols[..l.k].iter().map(|(_, s)| s.elems()).collect();
        let rows: Vec<&[Gf65536]> =
            symbols[l.k..].iter().map(|(pos, _)| w.ext_row(*pos)).collect();
        let mut dsts: Vec<&mut [Gf65536]> = scratch.chunks_mut(l.stripes).collect();
        self.apply(&rows, &srcs, &mut dsts);
        for (predicted, (_, sym)) in scratch.chunks(l.stripes).zip(&symbols[l.k..]) {
            if predicted != sym.elems() {
                return Err(CodeError::Inconsistent);
            }
        }
        Ok(())
    }

    /// The consistency predicate `V/A ∈ C_2t` lifted to striped symbols:
    /// true iff every stripe is consistent.
    ///
    /// Incremental: the polynomial determined by the first `k` symbols is
    /// never materialized — each extra symbol is checked against the
    /// memoized extension row for its position, across all stripes at
    /// once.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadPosition`] / [`CodeError::WrongDataLength`]
    /// for malformed input.
    pub fn is_consistent(&self, symbols: &[(usize, Symbol)]) -> Result<bool, CodeError> {
        self.validate_shape(symbols)?;
        if symbols.len() < self.layout.k {
            // Vacuously consistent: some codeword always extends them.
            return Ok(true);
        }
        let w = self.weights(symbols)?;
        let mut scratch = Vec::new();
        match self.verify_extras(&w, symbols, &mut scratch) {
            Ok(()) => Ok(true),
            Err(CodeError::Inconsistent) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Decodes the value from at least `k` symbols, verifying all supplied
    /// symbols lie on one codeword (`C_2t^{-1}`).
    ///
    /// # Errors
    ///
    /// - [`CodeError::NotEnoughSymbols`] with fewer than `k` symbols.
    /// - [`CodeError::Inconsistent`] when the symbols disagree.
    /// - [`CodeError::BadPosition`] / [`CodeError::WrongDataLength`] for
    ///   malformed input.
    pub fn decode_value(&self, symbols: &[(usize, Symbol)]) -> Result<Vec<u8>, CodeError> {
        self.validate_shape(symbols)?;
        let l = &self.layout;
        let w = self.weights(symbols)?;
        let mut scratch = Vec::new();
        self.verify_extras(&w, symbols, &mut scratch)?;
        let srcs: Vec<&[Gf65536]> = symbols[..l.k].iter().map(|(_, s)| s.elems()).collect();
        // chunk_ci[s] = Σ_j coeff[j][ci] · y_j[s]: gather the per-chunk
        // coefficient columns (k*k tiny elements), then one fused (and
        // possibly sharded) row application per reconstructed chunk.
        let cols: Vec<Vec<Gf65536>> = (0..l.k)
            .map(|ci| (0..l.k).map(|j| w.coeff_row(j)[ci]).collect())
            .collect();
        let rows: Vec<&[Gf65536]> = cols.iter().map(Vec::as_slice).collect();
        let mut recon = vec![Gf65536::ZERO; l.k * l.stripes];
        let mut dsts: Vec<&mut [Gf65536]> = recon.chunks_mut(l.stripes).collect();
        self.apply(&rows, &srcs, &mut dsts);
        let mut out = Vec::with_capacity(l.value_bytes);
        for chunk in recon.chunks(l.stripes) {
            let take = l.chunk_bytes.min(l.value_bytes.saturating_sub(out.len()));
            for (bi, elem) in chunk.iter().enumerate() {
                if 2 * bi >= take {
                    break;
                }
                let bytes = (elem.to_u64() as u16).to_be_bytes();
                out.push(bytes[0]);
                if 2 * bi + 1 < take {
                    out.push(bytes[1]);
                }
            }
        }
        debug_assert_eq!(out.len(), l.value_bytes);
        Ok(out)
    }

    /// Recomputes the full `n`-symbol codeword from at least `k` consistent
    /// symbols, directly from the cached extension rows (no intermediate
    /// decode-then-re-encode pass).
    ///
    /// # Errors
    ///
    /// Same as [`StripedCode::decode_value`].
    pub fn extend_symbols(&self, symbols: &[(usize, Symbol)]) -> Result<Vec<Symbol>, CodeError> {
        self.validate_shape(symbols)?;
        let l = &self.layout;
        let w = self.weights(symbols)?;
        let mut scratch = Vec::new();
        self.verify_extras(&w, symbols, &mut scratch)?;
        let srcs: Vec<&[Gf65536]> = symbols[..l.k].iter().map(|(_, s)| s.elems()).collect();
        let rows: Vec<&[Gf65536]> = (0..l.n).map(|pos| w.ext_row(pos)).collect();
        let mut out_elems: Vec<Vec<Gf65536>> = vec![vec![Gf65536::ZERO; l.stripes]; l.n];
        let mut dsts: Vec<&mut [Gf65536]> =
            out_elems.iter_mut().map(Vec::as_mut_slice).collect();
        self.apply(&rows, &srcs, &mut dsts);
        Ok(out_elems
            .into_iter()
            .map(|elems| Symbol::new(elems, self.symbol_bits()))
            .collect())
    }

    /// Error-*correcting* decode via Berlekamp-Welch, tolerating up to
    /// `(symbols.len() - k) / 2` corrupted symbols (corruption may differ
    /// per stripe; a symbol counts as corrupted in exactly the stripes
    /// where it deviates).
    ///
    /// The Liang-Vaidya protocol itself never needs this (it detects and
    /// diagnoses instead of correcting); the Fitzi-Hirt baseline and
    /// extension experiments do.
    ///
    /// # Errors
    ///
    /// - [`CodeError::NotEnoughSymbols`] with fewer than `k` symbols.
    /// - [`CodeError::Inconsistent`] when some stripe has more errors than
    ///   the correction radius.
    /// - [`CodeError::BadPosition`] / [`CodeError::WrongDataLength`] for
    ///   malformed input.
    pub fn decode_value_correcting(
        &self,
        symbols: &[(usize, Symbol)],
    ) -> Result<Vec<u8>, CodeError> {
        self.validate_shape(symbols)?;
        let l = &self.layout;
        if symbols.len() < l.k {
            return Err(CodeError::NotEnoughSymbols {
                needed: l.k,
                got: symbols.len(),
            });
        }
        let mut chunks: Vec<Vec<u8>> = vec![Vec::with_capacity(l.chunk_bytes); l.k];
        for s in 0..l.stripes {
            let corrected =
                crate::berlekamp_welch::decode(&self.rs, &self.stripe_pairs(symbols, s))
                    .map_err(|_| CodeError::Inconsistent)?;
            for (ci, elem) in corrected.data.iter().enumerate() {
                let bytes = (elem.to_u64() as u16).to_be_bytes();
                chunks[ci].push(bytes[0]);
                chunks[ci].push(bytes[1]);
            }
        }
        let mut out = Vec::with_capacity(l.value_bytes);
        for chunk in chunks {
            out.extend_from_slice(&chunk[..l.chunk_bytes.min(chunk.len())]);
        }
        out.truncate(l.value_bytes);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 37 + 11) as u8).collect()
    }

    #[test]
    fn layout_geometry() {
        let c = StripedCode::c2t(7, 2, 100).unwrap();
        let l = c.layout();
        assert_eq!(l.k, 3);
        assert_eq!(l.chunk_bytes, 34); // ceil(100/3)
        assert_eq!(l.stripes, 17);
        assert_eq!(c.symbol_bits(), 34 * 8);
    }

    #[test]
    fn roundtrip_various_sizes() {
        for (n, t, len) in [(4, 1, 1), (4, 1, 2), (4, 1, 7), (7, 2, 100), (7, 2, 101), (10, 3, 64), (13, 4, 1000)] {
            let c = StripedCode::c2t(n, t, len).unwrap();
            let v = value(len);
            let syms = c.encode_value(&v).unwrap();
            assert_eq!(syms.len(), n);
            let k = n - 2 * t;
            // Decode from the last k symbols.
            let picks: Vec<_> = syms.iter().cloned().enumerate().skip(n - k).collect();
            assert_eq!(c.decode_value(&picks).unwrap(), v, "n={n} t={t} len={len}");
        }
    }

    #[test]
    fn identical_values_give_identical_symbols() {
        // Lemma 1's premise: processors with the same input compute the
        // same codeword.
        let c = StripedCode::c2t(7, 2, 50).unwrap();
        let v = value(50);
        assert_eq!(c.encode_value(&v).unwrap(), c.encode_value(&v).unwrap());
    }

    #[test]
    fn different_values_differ_in_many_positions() {
        // Distance 2t+1 = 5 of C_2t lifts to striped symbols.
        let c = StripedCode::c2t(7, 2, 30).unwrap();
        let mut v2 = value(30);
        v2[29] ^= 1;
        let s1 = c.encode_value(&value(30)).unwrap();
        let s2 = c.encode_value(&v2).unwrap();
        let diff = s1.iter().zip(&s2).filter(|(a, b)| a != b).count();
        assert!(diff >= 5, "only {diff} symbol positions differ");
    }

    #[test]
    fn corruption_detected() {
        let c = StripedCode::c2t(7, 2, 48).unwrap();
        let v = value(48);
        let syms = c.encode_value(&v).unwrap();
        let mut pairs: Vec<_> = syms.iter().cloned().enumerate().collect();
        // Corrupt one stripe element of position 2.
        let mut elems = pairs[2].1.elems().to_vec();
        elems[0] += Gf65536::ONE;
        pairs[2].1 = Symbol::new(elems, pairs[2].1.logical_bits());
        assert!(!c.is_consistent(&pairs).unwrap());
        assert_eq!(c.decode_value(&pairs), Err(CodeError::Inconsistent));
    }

    #[test]
    fn consistency_of_honest_subsets() {
        let c = StripedCode::c2t(10, 3, 64).unwrap();
        let syms = c.encode_value(&value(64)).unwrap();
        let subset: Vec<_> = syms.iter().cloned().enumerate().filter(|(i, _)| i % 2 == 0).collect();
        assert!(c.is_consistent(&subset).unwrap());
    }

    #[test]
    fn extend_symbols_matches_encode() {
        let c = StripedCode::c2t(7, 2, 20).unwrap();
        let v = value(20);
        let syms = c.encode_value(&v).unwrap();
        let picks: Vec<_> = syms.iter().cloned().enumerate().take(3).collect();
        assert_eq!(c.extend_symbols(&picks).unwrap(), syms);
    }

    #[test]
    fn malformed_symbol_rejected() {
        let c = StripedCode::c2t(7, 2, 20).unwrap();
        let syms = c.encode_value(&value(20)).unwrap();
        let mut pairs: Vec<_> = syms.iter().cloned().enumerate().take(3).collect();
        pairs[0].1 = Symbol::new(vec![Gf65536::ZERO], 16); // wrong stripes
        assert!(matches!(
            c.decode_value(&pairs),
            Err(CodeError::WrongDataLength { .. })
        ));
    }

    #[test]
    fn zero_length_value_rejected() {
        assert!(StripedCode::c2t(7, 2, 0).is_err());
    }

    #[test]
    fn t_zero_degenerates_to_rate_one() {
        let c = StripedCode::c2t(4, 0, 16).unwrap();
        let v = value(16);
        let syms = c.encode_value(&v).unwrap();
        let picks: Vec<_> = syms.into_iter().enumerate().collect();
        assert_eq!(c.decode_value(&picks).unwrap(), v);
    }

    #[test]
    fn correcting_decode_fixes_t_corruptions() {
        let c = StripedCode::new(7, 3, 60).unwrap(); // e_max = 2
        let v = value(60);
        let syms = c.encode_value(&v).unwrap();
        let mut pairs: Vec<_> = syms.iter().cloned().enumerate().collect();
        for victim in [1usize, 4] {
            let mut elems = pairs[victim].1.elems().to_vec();
            for e in &mut elems {
                *e += Gf65536::ONE;
            }
            pairs[victim].1 = Symbol::new(elems, pairs[victim].1.logical_bits());
        }
        assert_eq!(c.decode_value_correcting(&pairs).unwrap(), v);
        // Plain decode refuses.
        assert_eq!(c.decode_value(&pairs), Err(CodeError::Inconsistent));
    }

    #[test]
    fn correcting_decode_rejects_too_many_errors() {
        let c = StripedCode::new(5, 3, 20).unwrap(); // e_max = 1
        let v = value(20);
        let syms = c.encode_value(&v).unwrap();
        let mut pairs: Vec<_> = syms.iter().cloned().enumerate().collect();
        for (victim, pair) in pairs.iter_mut().enumerate().take(2) {
            let mut elems = pair.1.elems().to_vec();
            elems[0] += Gf65536::new(victim as u16 + 3);
            pair.1 = Symbol::new(elems, pair.1.logical_bits());
        }
        // Either fails or returns a *different* valid value; it must not
        // silently return the original.
        match c.decode_value_correcting(&pairs) {
            Err(CodeError::Inconsistent) => {}
            Ok(decoded) => assert_ne!(decoded, v),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn sharding_is_pool_size_invariant() {
        // Large enough that `apply_rows` actually splits into several
        // bands (k = 3 → ~33k stripes → up to 4 bands of 8192).
        let len = 200_000;
        let v = value(len);
        let serial = StripedCode::c2t(7, 2, len).unwrap().with_threads(1);
        let syms = serial.encode_value(&v).unwrap();
        for workers in [2usize, 3, 8] {
            let sharded = StripedCode::c2t(7, 2, len).unwrap().with_threads(workers);
            assert_eq!(sharded.encode_value(&v).unwrap(), syms, "encode workers={workers}");
            let picks: Vec<_> = syms.iter().cloned().enumerate().skip(2).collect();
            assert_eq!(sharded.decode_value(&picks).unwrap(), v, "decode workers={workers}");
            assert_eq!(sharded.extend_symbols(&picks).unwrap(), syms, "extend workers={workers}");
            assert!(sharded.is_consistent(&picks).unwrap(), "consistent workers={workers}");
        }
    }

    #[test]
    #[should_panic(expected = "codec threads must be at least 1")]
    fn zero_threads_rejected() {
        let _ = StripedCode::c2t(7, 2, 8).unwrap().with_threads(0);
    }

    #[test]
    fn odd_chunk_sizes_pad_correctly() {
        // chunk_bytes odd => final stripe uses one padding byte.
        let c = StripedCode::c2t(4, 1, 3).unwrap(); // k=2, chunk=2 ... pick len 5
        let c2 = StripedCode::c2t(4, 1, 5).unwrap(); // k=2, chunk=3, stripes=2
        assert_eq!(c2.layout().chunk_bytes, 3);
        assert_eq!(c2.layout().stripes, 2);
        let v = value(5);
        let syms = c2.encode_value(&v).unwrap();
        let picks: Vec<_> = syms.into_iter().enumerate().take(2).collect();
        assert_eq!(c2.decode_value(&picks).unwrap(), v);
        let _ = c;
    }
}
