//! The [`Symbol`] type: one striped Reed-Solomon codeword position.

use std::fmt;

use mvbc_gf::{Field, Gf65536};

/// One coded symbol of a [`StripedCode`](crate::StripedCode) codeword.
///
/// The paper's symbol carries `D / (n - 2t)` bits. We realise it as a vector
/// of GF(2^16) elements — one element per stripe — so a symbol of any bit
/// width can be represented. [`Symbol::logical_bits`] reports the *logical*
/// width used for communication-complexity accounting (which may be smaller
/// than `16 * elems.len()` when the last stripe is padding).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Symbol {
    elems: Vec<Gf65536>,
    logical_bits: u64,
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol[{} stripes, {} bits](", self.elems.len(), self.logical_bits)?;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

impl Symbol {
    /// Creates a symbol from its stripe elements and logical bit width.
    pub fn new(elems: Vec<Gf65536>, logical_bits: u64) -> Self {
        Symbol { elems, logical_bits }
    }

    /// The stripe elements.
    pub fn elems(&self) -> &[Gf65536] {
        &self.elems
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.elems.len()
    }

    /// The logical number of bits this symbol contributes to communication
    /// complexity (the paper's `D / (n - 2t)`).
    pub fn logical_bits(&self) -> u64 {
        self.logical_bits
    }

    /// Serialises the symbol to bytes (big-endian u16 per stripe).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.elems.len() * 2);
        for e in &self.elems {
            out.extend_from_slice(&(e.to_u64() as u16).to_be_bytes());
        }
        out
    }

    /// Parses a symbol of `stripes` stripe elements from bytes.
    ///
    /// Returns `None` when `bytes` has the wrong length — the protocol layer
    /// treats malformed messages from Byzantine peers as the distinguished
    /// symbol `⊥`.
    pub fn from_bytes(bytes: &[u8], stripes: usize, logical_bits: u64) -> Option<Self> {
        if bytes.len() != stripes * 2 {
            return None;
        }
        let elems = bytes
            .chunks_exact(2)
            .map(|c| Gf65536::new(u16::from_be_bytes([c[0], c[1]])))
            .collect();
        Some(Symbol { elems, logical_bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(vals: &[u16]) -> Symbol {
        Symbol::new(vals.iter().map(|&v| Gf65536::new(v)).collect(), vals.len() as u64 * 16)
    }

    #[test]
    fn roundtrip_bytes() {
        let s = sym(&[0x1234, 0xabcd, 0x0001]);
        let b = s.to_bytes();
        assert_eq!(b.len(), 6);
        let back = Symbol::from_bytes(&b, 3, 48).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn from_bytes_rejects_wrong_length() {
        assert!(Symbol::from_bytes(&[1, 2, 3], 2, 16).is_none());
        assert!(Symbol::from_bytes(&[], 1, 16).is_none());
    }

    #[test]
    fn empty_symbol() {
        let s = Symbol::new(Vec::new(), 0);
        assert_eq!(s.stripes(), 0);
        assert_eq!(s.to_bytes().len(), 0);
        assert_eq!(Symbol::from_bytes(&[], 0, 0).unwrap(), s);
    }

    #[test]
    fn logical_bits_independent_of_storage() {
        // A 10-bit logical symbol still occupies one 16-bit stripe.
        let s = Symbol::new(vec![Gf65536::new(0x3ff)], 10);
        assert_eq!(s.logical_bits(), 10);
        assert_eq!(s.stripes(), 1);
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", sym(&[7])).is_empty());
        assert!(format!("{:?}", Symbol::default()).contains("0 stripes"));
    }
}
