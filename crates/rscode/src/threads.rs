//! Process-wide worker-count knob for stripe-sharded codec kernels.
//!
//! The striped codec shards its row-application loops across contiguous
//! stripe bands (see `striped::apply_rows`): worker `w` owns stripes
//! `[lo_w, hi_w)` of every output row, so each element is computed by
//! exactly one worker in exactly the order the serial loop would use —
//! committed bytes are identical for every worker count. The knob here
//! only trades wall-clock time; it can never change output bytes. The
//! `mvbc-lint` rule `determinism.thread_count` audits exactly this
//! invariant.
//!
//! Resolution order for the effective worker count:
//!
//! 1. an explicit per-code override ([`StripedCode::with_threads`]),
//! 2. the process-wide knob ([`set_codec_threads`], wired to the
//!    `--codec-threads` CLI flag),
//! 3. the machine's available parallelism (the default).
//!
//! [`StripedCode::with_threads`]: crate::StripedCode::with_threads

use std::sync::atomic::{AtomicUsize, Ordering};

/// `0` means "unset": resolve from the machine's available parallelism.
static CODEC_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide codec worker count.
///
/// `1` reproduces fully serial kernels. The count bounds only how many
/// stripe bands are worked concurrently; output bytes are identical for
/// every value.
///
/// # Panics
///
/// Panics when `threads` is zero — reject zero at the flag-parsing
/// layer with a structured error instead.
pub fn set_codec_threads(threads: usize) {
    assert!(threads >= 1, "codec threads must be at least 1");
    CODEC_THREADS.store(threads, Ordering::Relaxed);
}

/// The effective process-wide codec worker count.
///
/// Defaults to the machine's available parallelism until
/// [`set_codec_threads`] is called.
pub fn codec_threads() -> usize {
    match CODEC_THREADS.load(Ordering::Relaxed) {
        // mvbc-lint: allow(determinism.thread_count): worker count only shards disjoint stripe bands; committed bytes are pinned pool-size-invariant by the equivalence suite
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_resolves_to_at_least_one() {
        assert!(codec_threads() >= 1);
    }

    #[test]
    fn explicit_knob_wins() {
        set_codec_threads(3);
        assert_eq!(codec_threads(), 3);
        set_codec_threads(1);
        assert_eq!(codec_threads(), 1);
    }

    #[test]
    #[should_panic(expected = "codec threads must be at least 1")]
    fn zero_rejected() {
        set_codec_threads(0);
    }
}
