//! Per-position-set interpolation weights, memoized process-wide.
//!
//! Every consistency check and erasure decode interpolates the data
//! polynomial through the symbols at some `k`-subset of codeword
//! positions. The subset is a function of *which peers responded* — it is
//! stable across the stripes of one value, across the generations of one
//! broadcast, and across the slots of a replicated-log run — while the
//! symbol values change every time. Interpolating from scratch therefore
//! repeats the same O(k²) Lagrange-basis construction per stripe per
//! call.
//!
//! [`InterpWeights`] hoists everything that depends only on the position
//! set out of the data path:
//!
//! - `coeff[j * k + i]`: the coefficient of `x^i` in the Lagrange basis
//!   polynomial `L_j` of the `j`-th supplied position. The interpolated
//!   polynomial's coefficient vector is `Σ_j y_j · coeff_row(j)` — one
//!   [`addmul_slice`](mvbc_gf::kernels::addmul_slice) per supplied
//!   symbol.
//! - `ext[pos * k + j] = L_j(alpha_pos)` for *every* codeword position
//!   `pos`: predicting the codeword symbol at `pos` from the `k`
//!   supplied symbols is a `k`-term dot product, which is how extra
//!   symbols are verified incrementally (and how `extend` recomputes
//!   missing symbols) without re-interpolating.
//!
//! Weights are cached in a process-wide map keyed by
//! `(field, n, positions)` — the evaluation points `alpha_i = g^i` are a
//! pure function of the field, so two codes with equal geometry share
//! entries even across separately-constructed [`ReedSolomon`] values
//! (e.g. the per-slot codes of an SMR run).

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use mvbc_gf::Field;

/// Precomputed Lagrange machinery for one `(n, positions)` geometry.
#[derive(Debug)]
pub(crate) struct InterpWeights<F: Field> {
    /// Number of supplied positions (`positions.len()`, the code's `k`).
    pub k: usize,
    /// `coeff[j * k + i]` = coefficient of `x^i` in `L_j`.
    pub coeff: Vec<F>,
    /// `ext[pos * k + j]` = `L_j(alpha_pos)`, for `pos` in `0..n`.
    pub ext: Vec<F>,
}

impl<F: Field> InterpWeights<F> {
    /// Builds the weights for interpolation through `positions` over a
    /// code with evaluation points `alphas` (length `n`).
    fn build(positions: &[usize], alphas: &[F]) -> Self {
        let k = positions.len();
        let n = alphas.len();
        let xs: Vec<F> = positions.iter().map(|&p| alphas[p]).collect();

        // Master polynomial M(x) = Π_j (x - x_j), built incrementally.
        // In characteristic 2, (x - x_j) == (x + x_j).
        let mut master = vec![F::ZERO; k + 1];
        master[0] = F::ONE;
        for (deg, &x) in xs.iter().enumerate() {
            for i in (0..=deg).rev() {
                let c = master[i];
                master[i + 1] += c;
                master[i] = c * x;
            }
        }

        let mut coeff = vec![F::ZERO; k * k];
        let mut denom_inv = vec![F::ZERO; k];
        let mut quotient = vec![F::ZERO; k];
        for (j, &xj) in xs.iter().enumerate() {
            // Synthetic division: q_j = M / (x - x_j), degree k - 1.
            quotient[k - 1] = master[k];
            for i in (1..k).rev() {
                quotient[i - 1] = master[i] + xj * quotient[i];
            }
            // denom_j = q_j(x_j) = Π_{m != j} (x_j - x_m), non-zero
            // because the evaluation points are pairwise distinct.
            let denom = quotient.iter().rev().fold(F::ZERO, |acc, &q| acc * xj + q);
            let dinv = denom.inv().expect("distinct points give non-zero denominator");
            denom_inv[j] = dinv;
            for i in 0..k {
                coeff[j * k + i] = quotient[i] * dinv;
            }
        }

        // Extension rows. For a supplied position, L_j(x_j') = δ_{jj'}
        // (identity row); for any other position p,
        // L_j(alpha_p) = M(alpha_p) / ((alpha_p - x_j) · denom_j).
        let mut ext = vec![F::ZERO; n * k];
        for (pos, &apos) in alphas.iter().enumerate() {
            let row = &mut ext[pos * k..(pos + 1) * k];
            if let Some(j) = positions.iter().position(|&p| p == pos) {
                row[j] = F::ONE;
                continue;
            }
            let m_at = master.iter().rev().fold(F::ZERO, |acc, &c| acc * apos + c);
            for (j, &xj) in xs.iter().enumerate() {
                let diff_inv = (apos - xj).inv().expect("alpha points are pairwise distinct");
                row[j] = m_at * diff_inv * denom_inv[j];
            }
        }

        InterpWeights { k, coeff, ext }
    }

    /// One Lagrange-basis coefficient row (`L_j`'s coefficients).
    pub fn coeff_row(&self, j: usize) -> &[F] {
        &self.coeff[j * self.k..(j + 1) * self.k]
    }

    /// The extension row for codeword position `pos`.
    pub fn ext_row(&self, pos: usize) -> &[F] {
        &self.ext[pos * self.k..(pos + 1) * self.k]
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    field: TypeId,
    n: usize,
    positions: Box<[usize]>,
}

// mvbc-lint: allow(determinism.hash_state): keyed-access-only memo cache; never iterated, so its order is unobservable and cannot reach a trace or report
type CacheMap = HashMap<Key, Arc<dyn Any + Send + Sync>>;

/// Entries are small (O(nk) field elements); the cap only guards against
/// pathological churn (e.g. fuzzing over thousands of geometries).
const CACHE_CAP: usize = 1 << 14;

fn cache() -> &'static RwLock<CacheMap> {
    static CACHE: OnceLock<RwLock<CacheMap>> = OnceLock::new();
    // mvbc-lint: allow(determinism.hash_state): same keyed-access-only cache as CacheMap above
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Returns the (possibly cached) weights for interpolating through
/// `positions` over the code with evaluation points `alphas`.
///
/// Read-mostly: repeated calls with a known position set never take the
/// write lock.
pub(crate) fn weights_for<F: Field>(positions: &[usize], alphas: &[F]) -> Arc<InterpWeights<F>> {
    // The cache key omits the evaluation points because they must be the
    // canonical `alpha(0..n)` — the only points `ReedSolomon::new`
    // produces. A future caller with bespoke points would silently share
    // entries with the canonical geometry; catch that in debug builds.
    debug_assert!(
        alphas.iter().enumerate().all(|(i, &a)| a == F::alpha(i)),
        "weights cache requires canonical evaluation points alpha(0..n)"
    );
    let key = Key {
        field: TypeId::of::<F>(),
        n: alphas.len(),
        positions: positions.into(),
    };
    {
        let map = cache().read().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(entry) = map.get(&key) {
            return entry.clone().downcast::<InterpWeights<F>>().expect("cache entry type");
        }
    }
    let built: Arc<InterpWeights<F>> = Arc::new(InterpWeights::build(positions, alphas));
    let mut map = cache().write().unwrap_or_else(std::sync::PoisonError::into_inner);
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    let entry = map
        .entry(key)
        .or_insert_with(|| built.clone() as Arc<dyn Any + Send + Sync>);
    entry.clone().downcast::<InterpWeights<F>>().expect("cache entry type")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvbc_gf::{interpolate, Gf256, Gf65536, Poly};

    fn alphas<F: Field>(n: usize) -> Vec<F> {
        (0..n).map(F::alpha).collect()
    }

    #[test]
    fn coeff_rows_match_lagrange_interpolation() {
        let als = alphas::<Gf256>(7);
        let positions = [1usize, 4, 6];
        let w = weights_for::<Gf256>(&positions, &als);
        let ys = [Gf256::new(17), Gf256::new(200), Gf256::new(3)];
        // Matrix path.
        let mut coeffs = vec![Gf256::ZERO; 3];
        for (j, &y) in ys.iter().enumerate() {
            mvbc_gf::kernels::addmul_slice(y, w.coeff_row(j), &mut coeffs);
        }
        // Reference path.
        let pts: Vec<_> = positions.iter().zip(&ys).map(|(&p, &y)| (als[p], y)).collect();
        let p = interpolate(&pts).unwrap();
        let mut expect = p.into_coeffs();
        expect.resize(3, Gf256::ZERO);
        assert_eq!(coeffs, expect);
    }

    #[test]
    fn ext_rows_predict_codeword_symbols() {
        let als = alphas::<Gf65536>(9);
        let positions = [0usize, 2, 5, 8];
        let w = weights_for::<Gf65536>(&positions, &als);
        let poly = Poly::from_coeffs(vec![
            Gf65536::new(11),
            Gf65536::new(22),
            Gf65536::new(33),
            Gf65536::new(44),
        ]);
        let ys: Vec<Gf65536> = positions.iter().map(|&p| poly.eval(als[p])).collect();
        for (pos, &a) in als.iter().enumerate() {
            let pred = w
                .ext_row(pos)
                .iter()
                .zip(&ys)
                .fold(Gf65536::ZERO, |acc, (&e, &y)| acc + e * y);
            assert_eq!(pred, poly.eval(a), "position {pos}");
        }
    }

    #[test]
    fn identity_rows_for_supplied_positions() {
        let als = alphas::<Gf256>(5);
        let positions = [3usize, 1];
        let w = weights_for::<Gf256>(&positions, &als);
        assert_eq!(w.ext_row(3), &[Gf256::ONE, Gf256::ZERO]);
        assert_eq!(w.ext_row(1), &[Gf256::ZERO, Gf256::ONE]);
    }

    #[test]
    fn cache_returns_shared_entries() {
        let als = alphas::<Gf256>(6);
        let a = weights_for::<Gf256>(&[0, 2, 4], &als);
        let b = weights_for::<Gf256>(&[0, 2, 4], &als);
        assert!(Arc::ptr_eq(&a, &b));
        let c = weights_for::<Gf256>(&[0, 2, 5], &als);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn single_point_interpolation_is_constant() {
        let als = alphas::<Gf256>(4);
        let w = weights_for::<Gf256>(&[2], &als);
        assert_eq!(w.coeff_row(0), &[Gf256::ONE]);
        for pos in 0..4 {
            assert_eq!(w.ext_row(pos), &[Gf256::ONE], "constant extends everywhere");
        }
    }
}
