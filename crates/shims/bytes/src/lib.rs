//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny API slice it actually uses: [`Bytes`], an immutable,
//! cheaply-clonable byte buffer (`Arc<[u8]>` under the hood). Cloning a
//! payload during message routing is O(1) and never copies the bytes,
//! which is what the network simulator relies on when fanning one send
//! out to its recipient.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer (no allocation beyond the shared empty `Arc`).
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes(Arc::from(&v[..]))
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes(Arc::from(v.as_bytes()))
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes(Arc::from(v.into_bytes()))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes(iter.into_iter().collect())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_deref() {
        let b: Bytes = vec![1u8, 2, 3].into();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], 1);
        assert_eq!(&b[1..], &[2, 3]);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a: Bytes = vec![9u8; 64].into();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![9u8; 64]);
    }
}
