//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API slice the workspace's benches use — groups,
//! parameterized benchmark ids, throughput annotation, and
//! `Bencher::iter` — backed by a plain wall-clock harness: each
//! benchmark is warmed up briefly, then timed over enough iterations to
//! fill a fixed measurement window, and the mean ns/iter (plus derived
//! throughput) is printed. No statistics, plots, or saved baselines;
//! `cargo bench` output is a readable table and nothing else.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(300);

/// Top-level benchmark driver (one per `criterion_group!` function).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Ungrouped single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self {
        run_one(&id.into().label, None, &mut f);
        self
    }
}

/// Label of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter rendering, e.g. `encode/4096`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Only a parameter rendering (the group name carries the function).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Units processed per iteration, for derived rates in the output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A named collection of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the harness sizes its
    /// measurement window by time, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility (no-op).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in the printed rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark with an input value passed through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.throughput, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing happens per-benchmark; this is a no-op
    /// kept for criterion compatibility).
    pub fn finish(self) {}
}

/// Handle that times the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, repeating it to fill the measurement window.
    // Wall-clock measurement is this shim's entire purpose; exempt from
    // the workspace-wide disallowed-methods mirror of the determinism
    // rules.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup: discover an iteration count that fills the window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_secs_f64() / warm_iters as f64;
        let target = ((MEASURE.as_secs_f64() / per_iter) as u64).max(1);

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = target;
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label:<48} (no measurement: Bencher::iter never called)");
        return;
    }
    let ns_per_iter = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    let mut line = format!("{label:<48} {ns_per_iter:>14.1} ns/iter");
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mb_s = bytes as f64 / ns_per_iter * 1e9 / (1024.0 * 1024.0);
            let _ = write!(line, " {mb_s:>10.1} MiB/s");
        }
        Some(Throughput::Elements(elems)) => {
            let elem_s = elems as f64 / ns_per_iter * 1e9;
            let _ = write!(line, " {elem_s:>10.0} elem/s");
        }
        None => {}
    }
    println!("{line}");
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut group = Criterion::default();
        let mut group = group.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("enc", 4096).label, "enc/4096");
        assert_eq!(BenchmarkId::from_parameter("n7_k3").label, "n7_k3");
    }
}
