//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is used by this workspace (the network
//! simulator's coordinator/node plumbing), so only that module is
//! provided, backed by `std::sync::mpsc`. The semantics the simulator
//! needs — unbounded FIFO channels, clonable senders, blocking `recv`
//! and `recv_timeout` — are identical; std's channel merely lacks a
//! `Sync` receiver, which the simulator never requires (each receiver
//! lives on exactly one thread).

#![forbid(unsafe_code)]

/// Multi-producer single-consumer channels (`crossbeam-channel` API slice).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    // Derived Clone would require T: Clone; the sender handle itself is
    // always clonable.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, failing only when the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// As [`recv`](Receiver::recv) with an upper bound on the wait.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Drains and returns all currently-queued messages.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn clone_sender_across_threads() {
        let (tx, rx) = channel::unbounded();
        std::thread::scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).unwrap());
            }
        });
        drop(tx);
        let mut got: Vec<i32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::unbounded::<()>();
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
        drop(tx);
    }
}
