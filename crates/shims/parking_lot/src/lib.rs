//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind the two API differences the
//! workspace relies on: `lock()` returns the guard directly (poisoning is
//! absorbed — a poisoned std lock still yields its inner data, matching
//! parking_lot's no-poisoning model), and the constructor is `const` so
//! locks can back `static` items such as the metrics tag interner.
//! Only `Mutex` is provided — nothing in-tree uses `RwLock` or the
//! non-blocking accessors; grow the shim if a call site appears.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock around `value` (usable in `const`/`static` context).
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static STATIC_LOCK: Mutex<Option<u32>> = Mutex::new(None);

    #[test]
    fn static_mutex_works() {
        let mut g = STATIC_LOCK.lock();
        *g.get_or_insert(41) += 1;
        assert_eq!(*g, Some(42));
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
