//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex`/`std::sync::RwLock` behind the two API
//! differences the workspace relies on: `lock()`/`read()`/`write()`
//! return the guard directly (poisoning is absorbed — a poisoned std
//! lock still yields its inner data, matching parking_lot's
//! no-poisoning model), and the constructors are `const` so locks can
//! back `static` items such as the metrics tag interner. Only the
//! blocking accessors are provided; grow the shim if another call site
//! appears.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock around `value` (usable in `const`/`static` context).
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning: any number of concurrent
/// readers, or one writer.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock around `value` (usable in `const`/`static` context).
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static STATIC_LOCK: Mutex<Option<u32>> = Mutex::new(None);

    #[test]
    fn static_mutex_works() {
        let mut g = STATIC_LOCK.lock();
        *g.get_or_insert(41) += 1;
        assert_eq!(*g, Some(42));
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    static STATIC_RWLOCK: RwLock<Option<u32>> = RwLock::new(None);

    #[test]
    fn static_rwlock_works() {
        assert!(STATIC_RWLOCK.read().is_none());
        *STATIC_RWLOCK.write() = Some(7);
        assert_eq!(*STATIC_RWLOCK.read(), Some(7));
    }

    #[test]
    fn rwlock_round_trip_and_concurrent_reads() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
