//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest this workspace's property suites
//! use: the [`proptest!`]/[`prop_compose!`]/[`prop_oneof!`] macros, the
//! [`strategy::Strategy`] trait, `any::<T>()`, range strategies,
//! tuples, and the `collection`/`sample`/`array` strategy factories.
//!
//! Differences from real proptest, chosen deliberately for an offline,
//! reproducible test environment:
//!
//! - **No shrinking.** A failing case reports the generated inputs
//!   (which is what shrinking exists to make readable) and re-raises the
//!   panic; inputs are printed verbatim instead of minimized.
//! - **Deterministic seeding.** Each test's RNG is seeded from the
//!   test's module path and name, so failures reproduce across runs and
//!   machines with no persistence files.
//! - **Panic-based assertions.** `prop_assert!` is `assert!`; rejection
//!   via `prop_assume!` skips the case rather than resampling it.

#![forbid(unsafe_code)]

/// Test-case RNG and run configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not
        /// implemented, so the value is ignored.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a test case did not pass: a genuine failure, or a rejection
    /// by `prop_assume!` (the case simply doesn't apply).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The case's inputs failed a `prop_assume!` precondition.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// The generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG seeded as a pure function of `name` (FNV-1a), so a given
        /// property always sees the same case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(hash))
        }

        /// Uniform 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.random::<u64>()
        }

        /// Uniform in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics when `bound == 0`.
        pub fn below(&mut self, bound: usize) -> usize {
            self.0.random_range(0..bound)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.0.random::<f64>()
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and basic combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!` to unify arm types).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy backed by a plain generation function (used by
    /// `prop_compose!`).
    #[derive(Clone)]
    pub struct FnStrategy<F>(pub F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between boxed alternative strategies (the
    /// `prop_oneof!` backend).
    pub struct OneOf<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds the union; `arms` must be non-empty.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.arms.len());
            self.arms[pick].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as u128) - (self.start as u128);
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    self.start + draw as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "strategy range is empty");
                    let span = (end as u128) - (start as u128) + 1;
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    start + draw as $t
                }
            }

            impl Strategy for core::ops::RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    (self.start..=<$t>::MAX).generate(rng)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy range is empty");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait backing it.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly from the type's domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Size specifications accepted by the collection strategies.
pub mod size {
    use crate::test_runner::TestRng;

    /// Fixed sizes (`usize`) or sampled ranges of sizes.
    pub trait IntoSizeRange {
        /// Draws a target size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "size range is empty");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "size range is empty");
            start + rng.below(end - start + 1)
        }
    }
}

/// Collection strategies (`vec`, `btree_set`, `btree_map`).
pub mod collection {
    use crate::size::IntoSizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};

    /// How many draws a set/map strategy attempts before giving up on
    /// reaching its target size (duplicate keys shrink collections).
    const MAX_COLLECTION_ATTEMPTS: usize = 10_000;

    /// Strategy for `Vec<S::Value>` with sizes drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Sz> {
        element: S,
        size: Sz,
    }

    impl<S: Strategy, Sz: IntoSizeRange> Strategy for VecStrategy<S, Sz> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            (0..target).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `size` may be a `usize` or a (inclusive or
    /// exclusive) range of sizes.
    pub fn vec<S: Strategy, Sz: IntoSizeRange>(element: S, size: Sz) -> VecStrategy<S, Sz> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S, Sz> {
        element: S,
        size: Sz,
    }

    impl<S: Strategy, Sz: IntoSizeRange> Strategy for BTreeSetStrategy<S, Sz>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target {
                set.insert(self.element.generate(rng));
                attempts += 1;
                assert!(
                    attempts < MAX_COLLECTION_ATTEMPTS,
                    "btree_set: element domain too small for requested size {target}"
                );
            }
            set
        }
    }

    /// `BTreeSet` strategy; duplicates are redrawn until the target size
    /// is reached.
    pub fn btree_set<S, Sz>(element: S, size: Sz) -> BTreeSetStrategy<S, Sz>
    where
        S: Strategy,
        S::Value: Ord,
        Sz: IntoSizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V, Sz> {
        key: K,
        value: V,
        size: Sz,
    }

    impl<K: Strategy, V: Strategy, Sz: IntoSizeRange> Strategy for BTreeMapStrategy<K, V, Sz>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0;
            while map.len() < target {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
                assert!(
                    attempts < MAX_COLLECTION_ATTEMPTS,
                    "btree_map: key domain too small for requested size {target}"
                );
            }
            map
        }
    }

    /// `BTreeMap` strategy; duplicate keys are redrawn until the target
    /// size is reached.
    pub fn btree_map<K, V, Sz>(key: K, value: V, size: Sz) -> BTreeMapStrategy<K, V, Sz>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        Sz: IntoSizeRange,
    {
        BTreeMapStrategy { key, value, size }
    }
}

/// Sampling strategies over explicit value lists.
pub mod sample {
    use crate::size::IntoSizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy picking one element of a list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    /// Uniform choice of one element from `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option list");
        Select(options)
    }

    /// Strategy picking an order-preserving subsequence.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T: Clone, Sz> {
        values: Vec<T>,
        size: Sz,
    }

    impl<T: Clone, Sz: IntoSizeRange> Strategy for Subsequence<T, Sz> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let count = self.size.pick(rng);
            assert!(
                count <= self.values.len(),
                "subsequence: requested {count} of {} values",
                self.values.len()
            );
            // Partial Fisher-Yates over the index space, then restore
            // source order so the result is a true subsequence.
            let mut indices: Vec<usize> = (0..self.values.len()).collect();
            for i in 0..count {
                let j = i + rng.below(indices.len() - i);
                indices.swap(i, j);
            }
            let mut chosen = indices[..count].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }

    /// Order-preserving random subsequence of `values`; `size` may be a
    /// fixed count or a range of counts.
    pub fn subsequence<T: Clone, Sz: IntoSizeRange>(values: Vec<T>, size: Sz) -> Subsequence<T, Sz> {
        Subsequence { values, size }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! uniform_arrays {
        ($($name:ident => $n:literal / $uname:ident),*) => {$(
            /// Strategy for an array of independently-drawn elements.
            #[derive(Debug, Clone)]
            pub struct $uname<S>(S);

            impl<S: Strategy> Strategy for $uname<S> {
                type Value = [S::Value; $n];

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    std::array::from_fn(|_| self.0.generate(rng))
                }
            }

            /// Array of independently-drawn elements of `element`.
            pub fn $name<S: Strategy>(element: S) -> $uname<S> {
                $uname(element)
            }
        )*};
    }

    uniform_arrays! {
        uniform2 => 2 / Uniform2,
        uniform3 => 3 / Uniform3,
        uniform4 => 4 / Uniform4,
        uniform8 => 8 / Uniform8
    }
}

/// The customary glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Defines property tests: each `fn` runs `config.cases` times against
/// freshly generated inputs; a failure reports the inputs and re-raises.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {
                            // Precondition unmet; the case is skipped.
                        }
                        Ok(Err($crate::test_runner::TestCaseError::Fail(reason))) => {
                            panic!(
                                "proptest {}: case {}/{} failed ({}) with inputs: {}",
                                stringify!($name),
                                case + 1,
                                config.cases,
                                reason,
                                described,
                            );
                        }
                        Err(payload) => {
                            eprintln!(
                                "proptest {}: case {}/{} failed with inputs: {}",
                                stringify!($name),
                                case + 1,
                                config.cases,
                                described,
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Defines a named strategy function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
            ($($arg:ident in $strat:expr),+ $(,)?)
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::FnStrategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), rng);
                )+
                $body
            })
        }
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

/// Property-context assertion (panics; no shrinking to re-run).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Property-context equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Property-context inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Usable anywhere the enclosing function returns
/// `Result<_, TestCaseError>` — which includes `proptest!` bodies.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 1u8.., c in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b >= 1);
            prop_assert!((0.25..0.75).contains(&c));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 2..5),
            s in prop::collection::btree_set(0usize..6, 0..=6),
            m in prop::collection::btree_map(0usize..9, 1u8.., 0..=3),
            pair in prop::sample::subsequence((0..7usize).collect::<Vec<_>>(), 2),
            quad in prop::array::uniform4(any::<u8>()),
            tup in (any::<bool>(), 0usize..4),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(s.len() <= 6);
            prop_assert!(m.len() <= 3);
            prop_assert_eq!(pair.len(), 2);
            prop_assert!(pair[0] < pair[1], "subsequence must preserve order");
            prop_assert_eq!(quad.len(), 4);
            prop_assert!(tup.1 < 4);
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    prop_compose! {
        fn point(scale: usize)(x in 0usize..10, y in 0usize..10) -> (usize, usize) {
            (x * scale, y * scale)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_applies_scale(p in point(3)) {
            prop_assert_eq!(p.0 % 3, 0);
            prop_assert_eq!(p.1 % 3, 0);
        }

        #[test]
        fn oneof_covers_all_arms(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2), Just(3)], 64)) {
            prop_assert!(v.iter().all(|&x| (1..=3).contains(&x)));
            prop_assert!((1..=3).all(|x| v.contains(&x)), "64 draws should hit every arm");
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let (da, db, dc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(da, db);
        assert_ne!(da, dc);
    }
}
