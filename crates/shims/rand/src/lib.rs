//! Offline stand-in for the `rand` crate (0.9-style method names).
//!
//! The workspace uses randomness only for *seeded, reproducible* test
//! adversaries and hash-key sampling, so cryptographic quality is not
//! required — statistical quality and determinism per seed are. The
//! generator behind [`rngs::StdRng`] is xoshiro256** seeded via
//! SplitMix64, the standard construction for small fast PRNGs.
//!
//! Provided surface: [`SeedableRng::seed_from_u64`], and via [`RngExt`]
//! the `random`, `random_bool`, and `random_range` methods.

#![forbid(unsafe_code)]

/// Low-level uniform `u64` source; everything else derives from it.
pub trait RngCore {
    /// Next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; guarantees a non-zero state for any seed.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Types producible uniformly from raw generator output (`random()`).
pub trait UniformRandom: Sized {
    /// Draws one uniformly-distributed value.
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRandom for $t {
            fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRandom for u128 {
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl UniformRandom for bool {
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformRandom for f64 {
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = u128::uniform_from(rng) % span;
                self.start + draw as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                let draw = u128::uniform_from(rng) % span;
                start + draw as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level drawing methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Uniform value of any [`UniformRandom`] type (type-inferred).
    fn random<T: UniformRandom>(&mut self) -> T {
        T::uniform_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p = {p} out of [0, 1]");
        f64::uniform_from(self) < p
    }

    /// Uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Back-compat alias: rand 0.8 call sites name this trait `Rng`.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8).map(|_| rng.random::<u64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u8 = rng.random_range(0..3);
            assert!(x < 3);
            let y: u16 = rng.random_range(1..=u16::MAX);
            assert!(y >= 1);
            let z: usize = rng.random_range(10..11);
            assert_eq!(z, 10);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        // p = 0.5 should land near 50% over many draws.
        let hits = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn uniform_values_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let bytes: Vec<u8> = (0..256).map(|_| rng.random()).collect();
        let distinct: std::collections::HashSet<u8> = bytes.iter().copied().collect();
        assert!(distinct.len() > 100, "only {} distinct bytes", distinct.len());
    }
}
