//! Offline stand-in for the `serde` crate.
//!
//! The workspace's metric types derive `Serialize`/`Deserialize` so that
//! downstream users *can* wire real serde in, but nothing in-tree
//! serializes through serde (snapshots export via CSV/markdown). The
//! traits are therefore markers with no required methods, and the derives
//! (re-exported from the sibling `serde_derive` shim) emit bare impls.
//! Swapping in real serde later only requires replacing these two shim
//! crates — call sites are source-compatible.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize<'de> {}

/// Marker mirroring serde's owned-deserialization convenience trait.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
