//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on metric types but
//! never serializes them through serde (exports go through hand-written
//! CSV/markdown renderers), so the derives expand to marker-trait impls.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the first `struct`/`enum` keyword.
///
/// Good enough for the non-generic types this workspace derives on; a
/// generic type would need real parsing and fails loudly instead.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ref ident) = tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            assert!(
                                p.as_char() != '<',
                                "serde shim derive does not support generic type `{name}`"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("serde shim derive: expected type name, got {other:?}"),
                }
            }
        }
    }
    panic!("serde shim derive: no struct/enum keyword in input");
}

/// No-op `Serialize` derive: emits only the marker-trait impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}").parse().unwrap()
}

/// No-op `Deserialize` derive: emits only the marker-trait impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
}
