//! Commands, fixed-width batch framing, and the client-side batch queue.

use std::collections::VecDeque;

/// One state-machine command: `SET key value`, fixed-width encoded.
///
/// Key `0` is reserved as the no-op used for batch padding, so a slot that
/// falls back to the protocol's default value (all zero bytes) decodes to
/// an *empty* batch at every replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Command {
    /// Key written by the command (`0` = no-op padding).
    pub key: u16,
    /// Value stored under the key.
    pub value: u32,
}

impl Command {
    /// Encoded size of one command.
    pub const WIRE_BYTES: usize = 6;

    /// Fixed-width big-endian encoding.
    pub fn encode(&self) -> [u8; Self::WIRE_BYTES] {
        let k = self.key.to_be_bytes();
        let v = self.value.to_be_bytes();
        [k[0], k[1], v[0], v[1], v[2], v[3]]
    }

    /// Inverse of [`Command::encode`]; `None` on a length mismatch.
    pub fn decode(bytes: &[u8]) -> Option<Command> {
        if bytes.len() != Self::WIRE_BYTES {
            return None;
        }
        Some(Command {
            key: u16::from_be_bytes([bytes[0], bytes[1]]),
            value: u32::from_be_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]),
        })
    }

    /// True for the padding command (key `0`).
    pub fn is_noop(&self) -> bool {
        self.key == 0
    }
}

/// Encodes up to `capacity` commands as one fixed-width slot payload
/// (`capacity * WIRE_BYTES` bytes, zero-padded with no-ops).
///
/// # Panics
///
/// Panics when `commands.len() > capacity`.
pub fn encode_batch(commands: &[Command], capacity: usize) -> Vec<u8> {
    assert!(
        commands.len() <= capacity,
        "batch of {} exceeds slot capacity {capacity}",
        commands.len()
    );
    let mut out = Vec::with_capacity(capacity * Command::WIRE_BYTES);
    for c in commands {
        out.extend_from_slice(&c.encode());
    }
    out.resize(capacity * Command::WIRE_BYTES, 0);
    out
}

/// Decodes a slot payload, dropping no-op padding. Trailing bytes that do
/// not fill a whole command are ignored.
pub fn decode_batch(bytes: &[u8]) -> Vec<Command> {
    bytes
        .chunks_exact(Command::WIRE_BYTES)
        .filter_map(Command::decode)
        .filter(|c| !c.is_noop())
        .collect()
}

/// Deterministic synthetic client streams for demos, soaks and
/// benchmarks: `per_replica` commands per replica, replica `i` writing
/// keys from its own range with seeded pseudo-random values.
///
/// Keys are assigned modulo the `u16` key space *skipping the no-op key
/// `0`*, so every generated command is committable at any stream length
/// (streams beyond 65535 total commands reuse keys, which under `SET`
/// semantics overwrites — never silently drops — earlier writes).
pub fn synthetic_workloads(n: usize, per_replica: usize, seed: u64) -> Vec<Vec<Command>> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next_value = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 32) as u32
    };
    (0..n)
        .map(|i| {
            (0..per_replica)
                .map(|j| Command {
                    key: ((i * per_replica + j) % (u16::MAX as usize)) as u16 + 1,
                    value: next_value(),
                })
                .collect()
        })
        .collect()
}

/// A replica's pending-command queue with the log's batch budget: commands
/// accumulate here until the replica's turn as primary drains up to
/// `max_commands` of them into one slot proposal.
///
/// # Examples
///
/// ```
/// use mvbc_smr::{BatchBuilder, Command};
///
/// let mut q = BatchBuilder::new(2);
/// q.extend((1..=5u16).map(|k| Command { key: k, value: 9 }));
/// assert_eq!(q.next_batch().len(), 2); // budget caps the batch
/// assert_eq!(q.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchBuilder {
    queue: VecDeque<Command>,
    max_commands: usize,
}

impl BatchBuilder {
    /// An empty queue draining at most `max_commands` per batch.
    ///
    /// # Panics
    ///
    /// Panics when `max_commands == 0`.
    pub fn new(max_commands: usize) -> Self {
        assert!(max_commands > 0, "batch budget must admit a command");
        BatchBuilder {
            queue: VecDeque::new(),
            max_commands,
        }
    }

    /// Enqueues one command (no-ops are dropped — they would be stripped
    /// at decode anyway).
    pub fn push(&mut self, cmd: Command) {
        if !cmd.is_noop() {
            self.queue.push_back(cmd);
        }
    }

    /// Enqueues many commands.
    pub fn extend(&mut self, cmds: impl IntoIterator<Item = Command>) {
        for c in cmds {
            self.push(c);
        }
    }

    /// Drains the next batch: up to the per-slot command budget, in FIFO
    /// order. Empty when no commands are pending.
    pub fn next_batch(&mut self) -> Vec<Command> {
        let take = self.queue.len().min(self.max_commands);
        self.queue.drain(..take).collect()
    }

    /// Puts a previously drained batch back at the *front* of the queue
    /// (a fault-free primary whose slot fell back retries its proposal on
    /// its next turn, preserving client order).
    pub fn requeue(&mut self, batch: Vec<Command>) {
        for cmd in batch.into_iter().rev() {
            if !cmd.is_noop() {
                self.queue.push_front(cmd);
            }
        }
    }

    /// Number of pending commands.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no commands are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        let c = Command { key: 513, value: 0xDEAD_BEEF };
        assert_eq!(Command::decode(&c.encode()), Some(c));
        assert_eq!(Command::decode(&[1, 2, 3]), None);
        assert!(Command { key: 0, value: 7 }.is_noop());
        assert!(!c.is_noop());
    }

    #[test]
    fn batch_roundtrip_with_padding() {
        let cmds = vec![
            Command { key: 1, value: 10 },
            Command { key: 2, value: 20 },
        ];
        let bytes = encode_batch(&cmds, 4);
        assert_eq!(bytes.len(), 4 * Command::WIRE_BYTES);
        assert_eq!(decode_batch(&bytes), cmds);
        // The all-zero fallback payload is an empty batch.
        assert!(decode_batch(&[0u8; 4 * Command::WIRE_BYTES]).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds slot capacity")]
    fn batch_over_capacity_panics() {
        let cmds = vec![Command { key: 1, value: 1 }; 3];
        let _ = encode_batch(&cmds, 2);
    }

    #[test]
    fn builder_drains_fifo_under_budget() {
        let mut q = BatchBuilder::new(3);
        assert!(q.is_empty());
        q.extend((1..=7u16).map(|k| Command { key: k, value: 0 }));
        q.push(Command { key: 0, value: 1 }); // no-op dropped
        assert_eq!(q.len(), 7);
        let b1 = q.next_batch();
        assert_eq!(b1.iter().map(|c| c.key).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(q.next_batch().len(), 3);
        assert_eq!(q.next_batch().len(), 1);
        assert!(q.next_batch().is_empty());
    }

    #[test]
    fn synthetic_workloads_are_deterministic_and_committable() {
        let a = synthetic_workloads(3, 4, 7);
        let b = synthetic_workloads(3, 4, 7);
        assert_eq!(a, b);
        assert_ne!(a, synthetic_workloads(3, 4, 8));
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|w| w.len() == 4));
        assert!(a.iter().flatten().all(|c| !c.is_noop()));
        // Distinct key ranges per replica below the u16 wrap point.
        assert_eq!(a[0][0].key, 1);
        assert_eq!(a[1][0].key, 5);
        // Key assignment never produces the no-op key, even at the wrap.
        let big = synthetic_workloads(1, (u16::MAX as usize) + 2, 1);
        assert!(big[0].iter().all(|c| !c.is_noop()));
        assert_eq!(big[0][u16::MAX as usize].key, 1); // wrapped past the key space
    }

    #[test]
    fn requeue_preserves_order() {
        let mut q = BatchBuilder::new(2);
        q.extend((1..=4u16).map(|k| Command { key: k, value: 0 }));
        let batch = q.next_batch(); // [1, 2]
        q.requeue(batch);
        let keys: Vec<u16> = q.next_batch().iter().map(|c| c.key).collect();
        assert_eq!(keys, vec![1, 2]);
        assert_eq!(q.len(), 2);
    }
}
