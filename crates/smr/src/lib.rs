//! `mvbc-smr`: a pipelined, batched replicated command log on top of the
//! paper's broadcast primitive — Byzantine state-machine replication.
//!
//! A one-shot Byzantine broadcast becomes a throughput engine the classic
//! way: **state-machine replication**. `n` replicas run a slot-indexed
//! command log; the primary of each slot proposes a *batch* of client
//! commands, the slot is committed with the §4 dispersal-based broadcast
//! of [`mvbc_broadcast`], and every fault-free replica applies the same
//! batch to its local [`StateMachine`] — so all fault-free replicas hold
//! identical state after every slot, even with Byzantine primaries in the
//! rotation.
//!
//! What makes this a *subsystem* rather than a loop around
//! [`simulate_broadcast`](mvbc_broadcast::simulate_broadcast):
//!
//! - **One simulation, many slots.** The whole log runs inside a single
//!   [`run_simulation`](mvbc_netsim::run_simulation) call via the
//!   re-entrant [`run_broadcast_slot`](mvbc_broadcast::run_broadcast_slot)
//!   seam — no per-slot setup/teardown, and slot-scoped message tags
//!   (`smr.slot17.…`) keep adjacent slots' messages from cross-delivering.
//! - **Concurrent-slot pipelining.** With [`SmrConfig::pipeline`] `= W`,
//!   up to `W` slots share every synchronous round (each slot runs on its
//!   own [lane](mvbc_netsim::lanes) of the simulation), dividing total
//!   rounds by up to `W` while committing the **exact same log** as a
//!   sequential run — commits stay in slot order, and any commit that
//!   changes the shared dispute state discards and re-proposes the slots
//!   in flight (see [`run_replicated_log_pipelined`]).
//! - **Dispute memory across slots.** The diagnosis graph persists for
//!   the life of the log (the paper's "memory across generations" lifted
//!   to the log level): a primary caught equivocating in slot `s` has
//!   burnt trust edges — or is isolated — in every later slot, its slot
//!   commits an agreed fallback (empty batch) everywhere, and the
//!   rotation excludes it from then on.
//! - **Batching toward `O(nL)`.** Commands are packed per slot under a
//!   configurable command/byte budget, and broadcast generations are
//!   sized against the *aggregate* log payload (the dispute budget
//!   `t(t+2)` is global, so the Eq. (2) balance is struck once), which
//!   amortizes the fixed per-generation `Broadcast_Single_Bit` overhead
//!   toward the paper's `O(nL)` bound. `exp_smr_throughput` measures the
//!   win over independent single-shot broadcasts.
//!
//! # Examples
//!
//! ```
//! use mvbc_smr::{simulate_smr, Command, EquivocatingPrimary, HonestReplica, SmrConfig, SmrHooks};
//! use mvbc_metrics::MetricsSink;
//!
//! // 4 replicas, t = 1; replica 1 equivocates on its first primary turn.
//! let cfg = SmrConfig::new(4, 1, 6, 2)?;
//! let workloads: Vec<Vec<Command>> = (0..4u16)
//!     .map(|i| vec![Command { key: i + 1, value: 7 }])
//!     .collect();
//! let hooks: Vec<Box<dyn SmrHooks>> = (0..4)
//!     .map(|i| {
//!         if i == 1 {
//!             Box::new(EquivocatingPrimary::default()) as Box<dyn SmrHooks>
//!         } else {
//!             HonestReplica::boxed()
//!         }
//!     })
//!     .collect();
//! let run = simulate_smr(&cfg, workloads, hooks, MetricsSink::new());
//! // Fault-free replicas agree on the whole log and the final state...
//! assert_eq!(run.reports[0].agreed_log(), run.reports[2].agreed_log());
//! assert_eq!(run.stores[0], run.stores[3]);
//! // ...the equivocating slot fell back to the empty batch everywhere...
//! assert!(run.reports[0].slots[1].fallback);
//! // ...and the caught primary is out of the rotation.
//! assert!(run.reports[0].suspects.contains(&1));
//! # Ok::<(), mvbc_smr::SmrConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod log;
mod primary;
mod report;
mod slot;
mod state_machine;

pub use batch::{decode_batch, encode_batch, synthetic_workloads, BatchBuilder, Command};
pub use log::{
    run_replicated_log, run_replicated_log_pipelined, simulate_smr, simulate_smr_traced,
    simulate_smr_with, SmrConfig, SmrConfigError, SmrReport, SmrRun, COMMIT_GAP_TAG,
    COMMIT_VTIME_TAG,
};
pub use primary::{plan_for_slot, primary_for_slot, SlotPlan};
pub use report::{
    parse_json, JsonValue, LatencySummary, LinkActivity, NodeActivity, OutageReport, PhaseShare,
    RunReport, SlotTimeline, RUN_REPORT_SCHEMA, TOP_K,
};
pub use slot::{AgreedSlot, EquivocatingPrimary, HonestReplica, SilentPrimary, SlotReport, SmrHooks};
pub use state_machine::{KvStore, StateMachine};
