//! The replicated-log engine: many broadcast slots in one simulation,
//! sequentially or pipelined through a window of concurrent slots.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use mvbc_broadcast::{broadcast_optimal_d_bits, run_broadcast_slot, BroadcastConfig, BroadcastReport};
use mvbc_bsb::{BsbDriver, PhaseKingDriver};
use mvbc_core::DiagGraph;
use mvbc_metrics::MetricsSink;
use mvbc_netsim::lanes::{LaneId, LaneMux};
use mvbc_netsim::trace::TraceSink;
use mvbc_netsim::{
    run_simulation_traced, slot_scope, NodeCtx, NodeLogic, SchedulingPolicy, SimConfig, VirtualTime,
};

use crate::batch::{decode_batch, encode_batch, BatchBuilder, Command};
use crate::primary::{plan_for_slot, SlotPlan};
use crate::slot::{AgreedSlot, SlotReport, SmrHooks};
use crate::state_machine::{KvStore, StateMachine};

/// Histogram tag for per-slot commit times: each replica records the
/// virtual time at which it committed each slot (so percentiles over this
/// tag summarize when the log's slots landed).
pub const COMMIT_VTIME_TAG: &str = "smr.commit.vtime";

/// Histogram tag for per-slot commit latency: the virtual-time gap
/// between a replica's consecutive commits (the time slot `s` spent being
/// agreed on, as observed by that replica; under pipelining several slots
/// can commit at the same tick, so gaps of zero are real).
pub const COMMIT_GAP_TAG: &str = "smr.commit.gap";

/// Error for invalid replicated-log parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmrConfigError {
    /// `t >= n/3`.
    TooManyFaults {
        /// Number of replicas.
        n: usize,
        /// Requested tolerance.
        t: usize,
    },
    /// A log needs at least one slot.
    ZeroSlots,
    /// The batch budget admits no command.
    EmptyBatchBudget,
}

impl fmt::Display for SmrConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmrConfigError::TooManyFaults { n, t } => {
                write!(f, "error-free replication requires t < n/3 (n = {n}, t = {t})")
            }
            SmrConfigError::ZeroSlots => write!(f, "the log must have at least one slot"),
            SmrConfigError::EmptyBatchBudget => {
                write!(f, "the batch budget must admit at least one command")
            }
        }
    }
}

impl std::error::Error for SmrConfigError {}

/// Parameters of one replicated-log run.
///
/// # Examples
///
/// ```
/// use mvbc_smr::SmrConfig;
///
/// let cfg = SmrConfig::new(4, 1, 10, 8)?;
/// assert_eq!(cfg.batch_capacity(), 8);
/// assert_eq!(cfg.slot_bytes(), 8 * 6);
/// # Ok::<(), mvbc_smr::SmrConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrConfig {
    /// Number of replicas.
    pub n: usize,
    /// Fault tolerance (`t < n/3`).
    pub t: usize,
    /// Number of log slots to run.
    pub slots: usize,
    /// Maximum commands per slot batch.
    pub batch_commands: usize,
    /// Byte budget per slot batch (caps `batch_commands` when tighter).
    pub batch_bytes: usize,
    /// Explicit broadcast generation size in bytes (`None` = sized for
    /// the *aggregate* log payload; see [`SmrConfig::resolved_gen_bytes`]).
    pub gen_bytes: Option<usize>,
    /// Coordinator wedge-detection timeout for the underlying simulation
    /// (`None` = the simulator default). Long logs on slow machines can
    /// raise it. This is a *wall-clock* guard against protocol bugs
    /// wedging the simulator; it is unrelated to the virtual clock. To
    /// bound the log in *virtual* time — e.g. a latency SLA under an
    /// event-driven WAN model — use [`SmrConfig::max_vtime`].
    pub round_timeout: Option<Duration>,
    /// Scheduling policy of the underlying simulation: the lockstep
    /// round barrier (default) or an event-driven
    /// [`NetModel`](mvbc_netsim::NetModel) with per-link latencies,
    /// topology, and partitions.
    pub policy: SchedulingPolicy,
    /// Abort the run if the virtual clock exceeds this many ticks
    /// (`None` = unbounded). The virtual-time counterpart of
    /// `round_timeout`.
    pub max_vtime: Option<VirtualTime>,
    /// Pipeline depth `W`: how many slots may be in flight concurrently
    /// inside the single simulation. `1` (the default) runs slots
    /// back-to-back; larger depths interleave up to `W` broadcast slots
    /// per synchronous round, dividing total rounds by up to `W` while
    /// committing the **exact same log** (see
    /// [`run_replicated_log_pipelined`]).
    pub pipeline: usize,
    /// Codec worker count for stripe-sharded encode/decode kernels
    /// (`None` = leave the process-wide default, which resolves to the
    /// machine's available parallelism). Pure wall-clock knob: committed
    /// bytes are identical for every value
    /// (see [`mvbc_rscode::set_codec_threads`]).
    pub codec_threads: Option<usize>,
    /// Lane-pool size: how many idle lane worker threads the simulator
    /// keeps warm for reuse (`None` = leave the process-wide default).
    /// Pure wall-clock knob: lane scheduling and trace digests are
    /// identical for every value
    /// (see [`mvbc_netsim::lanepool::set_lane_pool_retain`]).
    pub lanes_pool: Option<usize>,
}

impl SmrConfig {
    /// Validated constructor with an unbounded byte budget.
    ///
    /// # Errors
    ///
    /// Returns a [`SmrConfigError`] for invalid parameters.
    pub fn new(n: usize, t: usize, slots: usize, batch_commands: usize) -> Result<Self, SmrConfigError> {
        Self::with_batch_bytes(n, t, slots, batch_commands, usize::MAX)
    }

    /// As [`SmrConfig::new`] with an explicit per-slot byte budget.
    ///
    /// # Errors
    ///
    /// As [`SmrConfig::new`], plus [`SmrConfigError::EmptyBatchBudget`]
    /// when the budget admits no command.
    pub fn with_batch_bytes(
        n: usize,
        t: usize,
        slots: usize,
        batch_commands: usize,
        batch_bytes: usize,
    ) -> Result<Self, SmrConfigError> {
        if 3 * t >= n {
            return Err(SmrConfigError::TooManyFaults { n, t });
        }
        if slots == 0 {
            return Err(SmrConfigError::ZeroSlots);
        }
        if batch_commands == 0 || batch_bytes < Command::WIRE_BYTES {
            return Err(SmrConfigError::EmptyBatchBudget);
        }
        Ok(SmrConfig {
            n,
            t,
            slots,
            batch_commands,
            batch_bytes,
            gen_bytes: None,
            round_timeout: None,
            policy: SchedulingPolicy::RoundBarrier,
            max_vtime: None,
            pipeline: 1,
            codec_threads: None,
            lanes_pool: None,
        })
    }

    /// Returns the configuration with a different scheduling policy for
    /// the underlying simulation (see [`SmrConfig::policy`]).
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns the configuration with a virtual-time budget (see
    /// [`SmrConfig::max_vtime`]).
    pub fn with_max_vtime(mut self, limit: VirtualTime) -> Self {
        self.max_vtime = Some(limit);
        self
    }

    /// Returns the configuration with pipeline depth `w` (see
    /// [`SmrConfig::pipeline`]).
    ///
    /// # Panics
    ///
    /// Panics when `w == 0` (the log needs at least one slot in flight).
    pub fn with_pipeline(mut self, w: usize) -> Self {
        assert!(w >= 1, "pipeline depth must be at least 1");
        self.pipeline = w;
        self
    }

    /// Returns the configuration with an explicit codec worker count
    /// (see [`SmrConfig::codec_threads`]).
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0` — reject zero at the flag-parsing
    /// layer with a structured error instead.
    pub fn with_codec_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "codec threads must be at least 1");
        self.codec_threads = Some(threads);
        self
    }

    /// Returns the configuration with an explicit lane-pool size
    /// (see [`SmrConfig::lanes_pool`]).
    ///
    /// # Panics
    ///
    /// Panics when `pool == 0` — reject zero at the flag-parsing layer
    /// with a structured error instead.
    pub fn with_lanes_pool(mut self, pool: usize) -> Self {
        assert!(pool >= 1, "lane pool size must be at least 1");
        self.lanes_pool = Some(pool);
        self
    }

    /// Commands per slot under both budgets.
    pub fn batch_capacity(&self) -> usize {
        self.batch_commands.min(self.batch_bytes / Command::WIRE_BYTES)
    }

    /// Fixed slot payload size (common knowledge; batches are padded).
    pub fn slot_bytes(&self) -> usize {
        self.batch_capacity() * Command::WIRE_BYTES
    }

    /// Broadcast generation size per slot.
    ///
    /// The default sizes generations against the *aggregate* log payload
    /// (`slots * slot_bytes`), not one slot: the diagnosis graph — and
    /// with it the paper's `t(t+2)` dispute budget — persists across the
    /// whole log, so the Eq. (2)-style balance between per-generation
    /// `Broadcast_Single_Bit` overhead and worst-case diagnosis cost is
    /// struck once for the log. This is the amortization the
    /// `exp_smr_throughput` experiment measures: per-slot sizing pays the
    /// fixed overhead `sqrt(slots)` times more often.
    pub fn resolved_gen_bytes(&self) -> usize {
        let slot_bytes = self.slot_bytes();
        match self.gen_bytes {
            Some(d) => d.clamp(1, slot_bytes),
            None => {
                let aggregate_bits = (self.slots * slot_bytes) as u64 * 8;
                let d_bits = broadcast_optimal_d_bits(self.n, self.t, aggregate_bits);
                (d_bits.div_ceil(8) as usize).clamp(1, slot_bytes)
            }
        }
    }

    /// The broadcast parameters of one slot led by `primary`.
    ///
    /// # Panics
    ///
    /// Panics when `primary >= n` (callers pick primaries from the
    /// rotation, which only yields valid ids).
    pub fn broadcast_config(&self, primary: usize) -> BroadcastConfig {
        BroadcastConfig::with_gen_bytes(
            self.n,
            self.t,
            primary,
            self.slot_bytes(),
            self.resolved_gen_bytes(),
        )
        .expect("validated SMR parameters yield valid broadcast parameters")
    }
}

/// One replica's summary of a whole log run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrReport {
    /// Per-slot records, in slot order.
    pub slots: Vec<SlotReport>,
    /// Final state-machine digest.
    pub digest: u64,
    /// Total commands committed (across all slots).
    pub committed_commands: u64,
    /// Slots that committed the fallback (empty) batch.
    pub fallback_slots: u64,
    /// Replicas isolated by the end of the run.
    pub isolated: Vec<usize>,
    /// Replicas excluded from primary rotation by the end of the run
    /// (isolated or caught misbehaving as primary).
    pub suspects: Vec<usize>,
    /// Slot attempts discarded by the pipelined scheduler because a
    /// commit changed the shared dispute state while they were in flight
    /// (always `0` for sequential runs). Discards cost extra traffic and
    /// rounds but never reach the log: every *committed* slot ran against
    /// exactly the sequential state.
    pub restarts: u64,
}

impl SmrReport {
    /// The agreement-relevant per-slot views (see [`SlotReport::agreed`]):
    /// identical at every fault-free replica.
    pub fn agreed_log(&self) -> Vec<AgreedSlot<'_>> {
        self.slots.iter().map(SlotReport::agreed).collect()
    }
}

/// Runs the replicated log for one replica: the per-node loop of
/// [`simulate_smr`].
///
/// `commands` is this replica's client command stream; it proposes them
/// in batches on its primary turns. The diagnosis graph and the suspect
/// set persist across slots — the paper's "memory across generations"
/// lifted to the log level — so a primary caught equivocating in slot `s`
/// is excluded from rotation for every slot after `s`, and its slot
/// commits the agreed fallback (an empty batch) at every fault-free
/// replica.
///
/// The eviction rule is deliberately conservative: the primary is
/// *caught* whenever its slot's diagnosis removed an edge incident to it,
/// and a removed edge only proves that *one* of its endpoints is faulty —
/// so a Byzantine accuser can frame a fault-free primary (forcing its
/// slot to fall back and evicting it from rotation) at the price of one
/// of its own `t + 1` disposable edges. The cost is bounded by the log's
/// global dispute budget: each Byzantine replica's `(t + 1)`-th
/// accusation isolates it, so `t` colluders frame at most `t²` fault-free
/// primaries over the whole log. If every active replica nevertheless
/// ends up suspected, the log enters **degraded mode**
/// ([`SlotPlan::DegradedEmpty`](crate::SlotPlan::DegradedEmpty)): no
/// suspect regains proposal rights — in particular a caught equivocator
/// is never re-elected — and every remaining slot commits the agreed
/// empty batch at every fault-free replica, deterministically and with no
/// broadcast at all. A framed fault-free primary re-queues its batch and
/// proposes it again if the rotation returns to it while non-degraded;
/// until then those clients' commands stay pending (in degraded mode the
/// log stays safe and live for empty slots, sacrificing only progress on
/// client commands).
pub fn run_replicated_log<S: StateMachine>(
    ctx: &mut NodeCtx,
    cfg: &SmrConfig,
    commands: Vec<Command>,
    hooks: &mut dyn SmrHooks,
    bsb: &mut dyn BsbDriver,
    state: &mut S,
) -> SmrReport {
    let me = ctx.id();
    let mut pending = BatchBuilder::new(cfg.batch_capacity());
    pending.extend(commands);
    let mut diag = DiagGraph::new(cfg.n, cfg.t);
    let mut suspects = vec![false; cfg.n];
    let mut slots: Vec<SlotReport> = Vec::with_capacity(cfg.slots);
    let mut last_snap = ctx.metrics().snapshot();
    let telemetry = ctx.metrics().telemetry();
    let mut last_commit_vtime = ctx.vtime();

    for slot in 0..cfg.slots as u64 {
        if diag.is_isolated(me) {
            // An identified-faulty replica is cut off; fault-free
            // replicas never land here (Lemma 4).
            break;
        }
        let primary = match plan_for_slot(slot, &diag, &suspects) {
            SlotPlan::Stall => break,
            SlotPlan::DegradedEmpty(nominal) => {
                // Every active replica is suspect: common knowledge, so
                // every fault-free replica commits the agreed empty batch
                // locally — no suspect is handed proposal rights.
                slots.push(SlotReport::degraded(slot, nominal, ctx.vtime()));
                continue;
            }
            SlotPlan::Lead(p) => p,
        };
        let bcfg = cfg.broadcast_config(primary);
        let scope = slot_scope("smr", slot);
        let span = telemetry.as_ref().map(|t| t.span(me, scope, "propose", ctx.vtime()));
        let proposal: Option<Vec<u8>> =
            (me == primary).then(|| encode_batch(&pending.next_batch(), cfg.batch_capacity()));
        let mut slot_hooks = hooks.slot_hooks(slot, me == primary);
        if let Some(span) = span {
            span.finish(ctx.vtime());
        }

        let pre_trust: Vec<bool> = (0..cfg.n).map(|x| diag.trusts(primary, x)).collect();
        let report = run_broadcast_slot(
            ctx,
            &bcfg,
            proposal.as_deref(),
            scope,
            &mut diag,
            slot_hooks.as_mut(),
            bsb,
        );
        let span = telemetry.as_ref().map(|t| t.span(me, scope, "commit", ctx.vtime()));
        let snap = ctx.metrics().snapshot();
        let delta = snap.delta(&last_snap);
        last_snap = snap;

        // The primary is *caught* when this slot's diagnosis implicated
        // it: it was isolated outright, it could not sustain an echo set,
        // or it lost a dispute edge to a replica that was *not itself*
        // identified as faulty (an edge removed by isolating a proven
        // liar says nothing about the primary, so it does not count).
        // All inputs are common knowledge, so every fault-free replica
        // reaches the same verdict, commits the same fallback, and drops
        // the primary from rotation together.
        let caught = report.defaulted
            || diag.is_isolated(primary)
            || (0..cfg.n).any(|x| {
                pre_trust[x] && !diag.trusts(primary, x) && !diag.is_isolated(x)
            });
        if caught {
            suspects[primary] = true;
        }
        let committed = if caught { Vec::new() } else { decode_batch(&report.output) };
        if caught && me == primary {
            if let Some(bytes) = &proposal {
                pending.requeue(decode_batch(bytes));
            }
        }
        state.apply_batch(&committed);
        if let Some(span) = span {
            span.finish(ctx.vtime());
        }
        if let Some(tel) = &telemetry {
            tel.record_value(me, COMMIT_VTIME_TAG, ctx.vtime());
            tel.record_value(me, COMMIT_GAP_TAG, ctx.vtime() - last_commit_vtime);
        }
        last_commit_vtime = ctx.vtime();
        slots.push(SlotReport {
            slot,
            primary,
            committed,
            fallback: caught,
            diagnosis_ran: report.diagnosis_invocations > 0,
            diagnosis_invocations: report.diagnosis_invocations,
            bits_sent_by_me: delta.logical_bits_by_node(me),
            rounds: delta.rounds(),
            commit_vtime: ctx.vtime(),
        });
    }

    finish_report(cfg, slots, &diag, &suspects, 0, state)
}

/// Assembles the final [`SmrReport`] from the end-of-run state (shared by
/// the sequential and pipelined engines).
fn finish_report<S: StateMachine>(
    cfg: &SmrConfig,
    slots: Vec<SlotReport>,
    diag: &DiagGraph,
    suspects: &[bool],
    restarts: u64,
    state: &S,
) -> SmrReport {
    let committed_commands = slots.iter().map(|s| s.committed.len() as u64).sum();
    let fallback_slots = slots.iter().filter(|s| s.fallback).count() as u64;
    SmrReport {
        digest: state.digest(),
        committed_commands,
        fallback_slots,
        isolated: (0..cfg.n).filter(|&v| diag.is_isolated(v)).collect(),
        suspects: (0..cfg.n)
            .filter(|&v| suspects[v] || diag.is_isolated(v))
            .collect(),
        restarts,
        slots,
    }
}

/// One in-flight slot attempt of the pipelined scheduler (or an
/// instantly-resolved degraded slot, which owns no lane).
struct Flight {
    primary: usize,
    /// Shared-state version this attempt was proposed under; stale
    /// attempts (version < the current one) are discarded, never
    /// committed.
    version: u64,
    degraded: bool,
    lane: Option<LaneId>,
    /// The batch this replica popped for its own proposal (requeued if
    /// the attempt is discarded or the slot falls back).
    my_batch: Option<Vec<Command>>,
    /// `diag.trusts(primary, x)` at proposal time (for the caught rule).
    pre_trust: Vec<bool>,
    outcome: Option<(BroadcastReport, DiagGraph)>,
    rounds: u64,
    bits: u64,
}

/// Runs the replicated log with up to [`SmrConfig::pipeline`] slots in
/// flight concurrently — the pipelined counterpart of
/// [`run_replicated_log`], committing the **exact same log**.
///
/// # How the pipeline stays sequential-equivalent
///
/// Each in-flight slot runs the unmodified [`run_broadcast_slot`] on its
/// own [`lane`](mvbc_netsim::lanes) against a *clone* of the diagnosis
/// graph taken at proposal time, so up to `W` slots share every
/// synchronous round (the per-slot tag scopes already prevent
/// cross-delivery). Commits apply strictly in slot order. The shared
/// dispute state (diagnosis graph + suspect set + this replica's pending
/// queue) carries a version counter: a commit that changes any of it —
/// a caught primary, a removed edge, an isolation — bumps the version
/// and **discards every other in-flight attempt** (their popped batches
/// are returned to the queue in order, their lanes drain in the
/// background, and the slots are re-proposed under the updated state
/// with a fresh attempt scope `smr.slot<S>.a<K>`).
///
/// The invariant this buys: the attempt that *commits* slot `s` was
/// proposed under exactly the post-slot-`(s-1)` state — the same
/// primary, the same diagnosis snapshot, the same pending batch as the
/// sequential engine — so per-slot reports, the committed log, and the
/// state digest are identical to a `pipeline = 1` run, under any attack
/// schedule. Fault-free steady state never discards (the graph only
/// changes when a diagnosis runs), so honest logs pipeline at full
/// depth, dividing total rounds by up to `W`; attack slots pay discarded
/// work bounded by the log's global dispute budget. Diagnosis updates
/// from slot `s` take effect for the first slot *proposed after `s`
/// commits*, which is exactly the sequential rule.
///
/// `make_driver` supplies one fresh `Broadcast_Single_Bit` driver per
/// slot attempt (each lane needs its own). [`SmrHooks::slot_hooks`] may
/// be called more than once per slot (once per attempt) and must be
/// deterministic in `(slot, i_am_primary)`.
pub fn run_replicated_log_pipelined<S: StateMachine>(
    ctx: &mut NodeCtx,
    cfg: &SmrConfig,
    commands: Vec<Command>,
    hooks: &mut dyn SmrHooks,
    make_driver: &mut dyn FnMut() -> Box<dyn BsbDriver>,
    state: &mut S,
) -> SmrReport {
    let me = ctx.id();
    let n = cfg.n;
    let window = cfg.pipeline.max(1);
    let total = cfg.slots as u64;
    let mut pending = BatchBuilder::new(cfg.batch_capacity());
    pending.extend(commands);
    let mut diag = DiagGraph::new(n, cfg.t);
    let mut suspects = vec![false; n];
    let mut version: u64 = 0;
    let mut slots: Vec<SlotReport> = Vec::with_capacity(cfg.slots);
    let mut restarts: u64 = 0;
    let mut mux: LaneMux<(BroadcastReport, DiagGraph)> = LaneMux::new();
    let mut flights: BTreeMap<u64, Flight> = BTreeMap::new();
    // Ordered maps: this is protocol state on the commit path, and the
    // determinism rules (`mvbc-lint` hash_state) keep unordered
    // containers out of it even when, as here, they are only ever
    // accessed by key.
    let mut lane_slots: BTreeMap<LaneId, u64> = BTreeMap::new();
    let mut attempts: BTreeMap<u64, u32> = BTreeMap::new();
    let mut next_slot: u64 = 0;
    let mut stopped = false;
    let telemetry = ctx.metrics().telemetry();
    let mut last_commit_vtime = ctx.vtime();

    loop {
        // --- Fill the window with proposals under the committed state. ---
        while !stopped && flights.len() < window && next_slot < total {
            if diag.is_isolated(me) {
                // An identified-faulty replica is cut off (sequential
                // engine: the per-slot `break`); fault-free replicas
                // never land here.
                stopped = true;
                break;
            }
            let slot = next_slot;
            match plan_for_slot(slot, &diag, &suspects) {
                SlotPlan::Stall => {
                    stopped = true;
                }
                SlotPlan::DegradedEmpty(nominal) => {
                    flights.insert(
                        slot,
                        Flight {
                            primary: nominal,
                            version,
                            degraded: true,
                            lane: None,
                            my_batch: None,
                            pre_trust: Vec::new(),
                            outcome: None,
                            rounds: 0,
                            bits: 0,
                        },
                    );
                    next_slot += 1;
                }
                SlotPlan::Lead(primary) => {
                    let attempt = attempts.entry(slot).or_insert(0);
                    let scope = format!("smr.slot{slot}.a{attempt}");
                    *attempt += 1;
                    let span = telemetry
                        .as_ref()
                        .map(|t| t.span(me, mvbc_metrics::intern_tag(&scope), "propose", ctx.vtime()));
                    let my_batch = (me == primary).then(|| pending.next_batch());
                    let proposal: Option<Vec<u8>> =
                        my_batch.as_ref().map(|b| encode_batch(b, cfg.batch_capacity()));
                    if let Some(span) = span {
                        span.finish(ctx.vtime());
                    }
                    let pre_trust: Vec<bool> = (0..n).map(|x| diag.trusts(primary, x)).collect();
                    let mut slot_hooks = hooks.slot_hooks(slot, me == primary);
                    let mut driver = make_driver();
                    let bcfg = cfg.broadcast_config(primary);
                    let mut lane_diag = diag.clone();
                    let lane = mux.spawn(ctx, scope.clone(), move |lane_ctx| {
                        let report = run_broadcast_slot(
                            lane_ctx,
                            &bcfg,
                            proposal.as_deref(),
                            &scope,
                            &mut lane_diag,
                            slot_hooks.as_mut(),
                            driver.as_mut(),
                        );
                        (report, lane_diag)
                    });
                    lane_slots.insert(lane, slot);
                    flights.insert(
                        slot,
                        Flight {
                            primary,
                            version,
                            degraded: false,
                            lane: Some(lane),
                            my_batch,
                            pre_trust,
                            outcome: None,
                            rounds: 0,
                            bits: 0,
                        },
                    );
                    next_slot += 1;
                }
            }
        }

        // --- Commit resolved flights, strictly in slot order. ---
        while let Some(head) = flights.get(&(slots.len() as u64)) {
            if !head.degraded && head.outcome.is_none() {
                break;
            }
            let slot = slots.len() as u64;
            let flight = flights.remove(&slot).expect("head flight present");
            debug_assert_eq!(
                flight.version, version,
                "live flights are never stale (discards clear them)"
            );
            if flight.degraded {
                slots.push(SlotReport::degraded(slot, flight.primary, ctx.vtime()));
                continue;
            }
            let (report, new_diag) = flight.outcome.expect("resolved flight has an outcome");
            // Same caught rule as the sequential engine — all inputs are
            // common knowledge, so every fault-free replica agrees.
            let caught = report.defaulted
                || new_diag.is_isolated(flight.primary)
                || (0..n).any(|x| {
                    flight.pre_trust[x]
                        && !new_diag.trusts(flight.primary, x)
                        && !new_diag.is_isolated(x)
                });
            let diag_changed = new_diag != diag;
            diag = new_diag;
            if caught {
                suspects[flight.primary] = true;
            }
            if caught || diag_changed {
                // The shared state moved: every other in-flight attempt
                // was proposed against a now-stale snapshot. Discard them
                // — deepest slot first so requeues rebuild the pending
                // queue in exact proposal order — *before* this slot's
                // own requeue, and rewind proposals to the next slot.
                version += 1;
                restarts += flights.len() as u64;
                for (_, doomed) in std::mem::take(&mut flights).into_iter().rev() {
                    if let Some(lane) = doomed.lane {
                        lane_slots.remove(&lane);
                    }
                    if let Some(batch) = doomed.my_batch {
                        pending.requeue(batch);
                    }
                }
                next_slot = slot + 1;
                // A stall/isolation verdict was reached against the old
                // state; re-evaluate it at the next fill (both conditions
                // are monotone, so this can only un-stick a byz self).
                stopped = false;
            }
            let committed = if caught { Vec::new() } else { decode_batch(&report.output) };
            if caught {
                if let Some(batch) = flight.my_batch {
                    pending.requeue(batch);
                }
            }
            let span = telemetry
                .as_ref()
                .map(|t| t.span(me, slot_scope("smr", slot), "commit", ctx.vtime()));
            state.apply_batch(&committed);
            if let Some(span) = span {
                span.finish(ctx.vtime());
            }
            if let Some(tel) = &telemetry {
                tel.record_value(me, COMMIT_VTIME_TAG, ctx.vtime());
                tel.record_value(me, COMMIT_GAP_TAG, ctx.vtime() - last_commit_vtime);
            }
            last_commit_vtime = ctx.vtime();
            slots.push(SlotReport {
                slot,
                primary: flight.primary,
                committed,
                fallback: caught,
                diagnosis_ran: report.diagnosis_invocations > 0,
                diagnosis_invocations: report.diagnosis_invocations,
                bits_sent_by_me: flight.bits,
                rounds: flight.rounds,
                commit_vtime: ctx.vtime(),
            });
        }

        if slots.len() as u64 >= total || (stopped && flights.is_empty()) {
            break;
        }
        if flights.is_empty() {
            // The window was wiped by a discard: refill first, so the
            // re-proposed slots join the very next physical round.
            continue;
        }

        // --- One physical round: every live lane advances one round
        // (the commit head is an unresolved lane flight here, so the mux
        // is non-empty; discarded lanes drain alongside). ---
        for finished in mux.step(ctx) {
            let Some(slot) = lane_slots.remove(&finished.id) else {
                continue; // a discarded attempt drained; drop its result
            };
            let flight = flights.get_mut(&slot).expect("lane maps to a live flight");
            flight.outcome = Some(finished.output);
            flight.rounds = finished.rounds;
            flight.bits = finished.logical_bits;
        }
    }

    // Drain discarded lanes so no lane thread outlives the log (their
    // peers at other replicas drain in the same rounds).
    while mux.has_lanes() {
        for finished in mux.step(ctx) {
            lane_slots.remove(&finished.id);
        }
    }

    finish_report(cfg, slots, &diag, &suspects, restarts, state)
}

/// Result of a simulated replicated-log run.
#[derive(Debug)]
pub struct SmrRun {
    /// Per-replica reports, indexed by replica id.
    pub reports: Vec<SmrReport>,
    /// Final key-value stores, indexed by replica id.
    pub stores: Vec<KvStore>,
    /// Synchronous rounds executed for the whole log.
    pub rounds: u64,
    /// Final virtual time of the simulation (equals `rounds` under the
    /// round-barrier policy; the latency-model tick of the last round's
    /// end under an event-driven policy).
    pub vtime: VirtualTime,
}

/// Runs a whole replicated log — every slot — inside **one** simulation:
/// one [`run_simulation`] call, replicas looping over slots with
/// dispute-control state carried across them.
///
/// `workloads[i]` is replica `i`'s client command stream (proposed on its
/// primary turns); `hooks[i]` its behaviour.
///
/// # Panics
///
/// Panics when `workloads.len() != cfg.n` or `hooks.len() != cfg.n`.
///
/// # Examples
///
/// ```
/// use mvbc_smr::{simulate_smr, Command, HonestReplica, SmrConfig};
/// use mvbc_metrics::MetricsSink;
///
/// let cfg = SmrConfig::new(4, 1, 4, 2)?;
/// let workloads: Vec<Vec<Command>> = (0..4u16)
///     .map(|i| vec![Command { key: i + 1, value: u32::from(i) * 10 }])
///     .collect();
/// let hooks = (0..4).map(|_| HonestReplica::boxed()).collect();
/// let run = simulate_smr(&cfg, workloads, hooks, MetricsSink::new());
/// // All replicas hold identical state and committed every command.
/// assert!(run.reports.windows(2).all(|w| w[0].digest == w[1].digest));
/// assert_eq!(run.reports[0].committed_commands, 4);
/// # Ok::<(), mvbc_smr::SmrConfigError>(())
/// ```
pub fn simulate_smr(
    cfg: &SmrConfig,
    workloads: Vec<Vec<Command>>,
    hooks: Vec<Box<dyn SmrHooks>>,
    metrics: MetricsSink,
) -> SmrRun {
    simulate_smr_traced(cfg, workloads, hooks, metrics, None)
}

/// As [`simulate_smr`], additionally recording every delivered message
/// into `trace` (when supplied). Tracing never changes scheduling or
/// results; with an event-driven [`SmrConfig::policy`] the trace's
/// virtual timestamps give the per-message delivery schedule.
///
/// # Panics
///
/// As [`simulate_smr`].
pub fn simulate_smr_traced(
    cfg: &SmrConfig,
    workloads: Vec<Vec<Command>>,
    hooks: Vec<Box<dyn SmrHooks>>,
    metrics: MetricsSink,
    trace: Option<TraceSink>,
) -> SmrRun {
    if cfg.pipeline > 1 {
        return simulate_smr_pipelined(cfg, workloads, hooks, metrics, trace);
    }
    let drivers = (0..cfg.n)
        .map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>)
        .collect();
    simulate_smr_with_traced(cfg, workloads, hooks, drivers, metrics, trace)
}

/// The pipelined body of [`simulate_smr`]: every replica schedules up to
/// [`SmrConfig::pipeline`] slots concurrently via
/// [`run_replicated_log_pipelined`], with a fresh Phase-King driver per
/// slot attempt.
fn simulate_smr_pipelined(
    cfg: &SmrConfig,
    workloads: Vec<Vec<Command>>,
    hooks: Vec<Box<dyn SmrHooks>>,
    metrics: MetricsSink,
    trace: Option<TraceSink>,
) -> SmrRun {
    assert_eq!(workloads.len(), cfg.n, "one command stream per replica");
    assert_eq!(hooks.len(), cfg.n, "one hooks object per replica");

    let logics: Vec<NodeLogic<(SmrReport, KvStore)>> = workloads
        .into_iter()
        .zip(hooks)
        .map(|(commands, mut hook)| {
            let cfg = cfg.clone();
            Box::new(move |ctx: &mut NodeCtx| {
                let mut store = KvStore::default();
                let mut make_driver =
                    || Box::new(PhaseKingDriver) as Box<dyn BsbDriver>;
                let report = run_replicated_log_pipelined(
                    ctx,
                    &cfg,
                    commands,
                    hook.as_mut(),
                    &mut make_driver,
                    &mut store,
                );
                (report, store)
            }) as NodeLogic<(SmrReport, KvStore)>
        })
        .collect();
    run_smr_simulation(cfg, logics, metrics, trace)
}

/// As [`simulate_smr`] with one explicit `Broadcast_Single_Bit` driver
/// per replica (the §4 substitution seam). Sequential only: a pipelined
/// log needs one driver per *slot attempt*, not per replica (use
/// [`run_replicated_log_pipelined`] with a driver factory).
///
/// # Panics
///
/// As [`simulate_smr`], plus when `drivers.len() != cfg.n` or
/// `cfg.pipeline > 1`.
pub fn simulate_smr_with(
    cfg: &SmrConfig,
    workloads: Vec<Vec<Command>>,
    hooks: Vec<Box<dyn SmrHooks>>,
    drivers: Vec<Box<dyn BsbDriver>>,
    metrics: MetricsSink,
) -> SmrRun {
    simulate_smr_with_traced(cfg, workloads, hooks, drivers, metrics, None)
}

/// Traced body of [`simulate_smr_with`].
fn simulate_smr_with_traced(
    cfg: &SmrConfig,
    workloads: Vec<Vec<Command>>,
    hooks: Vec<Box<dyn SmrHooks>>,
    drivers: Vec<Box<dyn BsbDriver>>,
    metrics: MetricsSink,
    trace: Option<TraceSink>,
) -> SmrRun {
    assert_eq!(workloads.len(), cfg.n, "one command stream per replica");
    assert_eq!(hooks.len(), cfg.n, "one hooks object per replica");
    assert_eq!(drivers.len(), cfg.n, "one BSB driver per replica");
    assert!(
        cfg.pipeline <= 1,
        "simulate_smr_with is sequential; pipelined runs need a driver per slot attempt"
    );

    let logics: Vec<NodeLogic<(SmrReport, KvStore)>> = workloads
        .into_iter()
        .zip(hooks)
        .zip(drivers)
        .map(|((commands, mut hook), mut driver)| {
            let cfg = cfg.clone();
            Box::new(move |ctx: &mut NodeCtx| {
                let mut store = KvStore::default();
                let report = run_replicated_log(
                    ctx,
                    &cfg,
                    commands,
                    hook.as_mut(),
                    driver.as_mut(),
                    &mut store,
                );
                (report, store)
            }) as NodeLogic<(SmrReport, KvStore)>
        })
        .collect();
    run_smr_simulation(cfg, logics, metrics, trace)
}

/// Shared simulation tail of the sequential and pipelined runners:
/// translates the log-level configuration (wall-clock timeout,
/// scheduling policy, virtual-time budget) onto the simulator.
fn run_smr_simulation(
    cfg: &SmrConfig,
    logics: Vec<NodeLogic<(SmrReport, KvStore)>>,
    metrics: MetricsSink,
    trace: Option<TraceSink>,
) -> SmrRun {
    // Perf knobs are process-wide; apply them only when the config pins
    // an explicit value so untouched configs inherit the CLI/machine
    // defaults. Both are pure wall-clock knobs (pool-size-invariance is
    // pinned by the codec equivalence and netsim latency suites).
    if let Some(threads) = cfg.codec_threads {
        mvbc_rscode::set_codec_threads(threads);
    }
    if let Some(pool) = cfg.lanes_pool {
        mvbc_netsim::lanepool::set_lane_pool_retain(pool);
    }
    let mut sim_cfg = SimConfig::new(cfg.n).with_policy(cfg.policy.clone());
    if let Some(timeout) = cfg.round_timeout {
        sim_cfg = sim_cfg.with_round_timeout(timeout);
    }
    if let Some(limit) = cfg.max_vtime {
        sim_cfg = sim_cfg.with_max_vtime(limit);
    }
    let result = run_simulation_traced(sim_cfg, metrics, trace, logics);
    let (reports, stores) = result.outputs.into_iter().unzip();
    SmrRun {
        reports,
        stores,
        rounds: result.rounds,
        vtime: result.vtime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::{EquivocatingPrimary, HonestReplica};

    fn workloads(n: usize, per_node: u16) -> Vec<Vec<Command>> {
        (0..n)
            .map(|i| {
                (0..per_node)
                    .map(|j| Command {
                        key: (i as u16) * per_node + j + 1,
                        value: u32::from(j) + 100 * i as u32,
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(SmrConfig::new(4, 1, 10, 4).is_ok());
        assert_eq!(
            SmrConfig::new(3, 1, 10, 4),
            Err(SmrConfigError::TooManyFaults { n: 3, t: 1 })
        );
        assert_eq!(SmrConfig::new(4, 1, 0, 4), Err(SmrConfigError::ZeroSlots));
        assert_eq!(SmrConfig::new(4, 1, 10, 0), Err(SmrConfigError::EmptyBatchBudget));
        assert_eq!(
            SmrConfig::with_batch_bytes(4, 1, 10, 4, 5),
            Err(SmrConfigError::EmptyBatchBudget)
        );
        assert!(SmrConfigError::ZeroSlots.to_string().contains("slot"));
    }

    #[test]
    fn byte_budget_caps_batch() {
        let cfg = SmrConfig::with_batch_bytes(4, 1, 10, 100, 20).unwrap();
        assert_eq!(cfg.batch_capacity(), 3); // 20 / 6
        assert_eq!(cfg.slot_bytes(), 18);
    }

    #[test]
    fn aggregate_gen_sizing_beats_per_slot_sizing() {
        // The log sizes generations against slots * slot_bytes, so a
        // longer log gets larger generations (fewer per slot).
        let short = SmrConfig::new(7, 2, 1, 16).unwrap();
        let long = SmrConfig::new(7, 2, 100, 16).unwrap();
        assert!(long.resolved_gen_bytes() > short.resolved_gen_bytes());
        let bcfg = long.broadcast_config(3);
        assert_eq!(bcfg.source, 3);
        assert_eq!(bcfg.value_bytes, long.slot_bytes());
    }

    #[test]
    fn honest_log_commits_everything_in_rotation_order() {
        let n = 4;
        let cfg = SmrConfig::new(n, 1, 8, 2).unwrap();
        let hooks = (0..n).map(|_| HonestReplica::boxed()).collect();
        let run = simulate_smr(&cfg, workloads(n, 2), hooks, MetricsSink::new());
        for w in run.reports.windows(2) {
            assert_eq!(w[0].agreed_log(), w[1].agreed_log(), "replicas disagree on the log");
            assert_eq!(w[0].digest, w[1].digest);
        }
        let r = &run.reports[0];
        assert_eq!(r.committed_commands, 4 * 2);
        assert_eq!(r.fallback_slots, 0);
        assert!(r.suspects.is_empty());
        // Slot s is led by replica s % n and carries its commands.
        for s in &r.slots {
            assert_eq!(s.primary, (s.slot % n as u64) as usize);
            assert!(!s.fallback);
        }
        assert_eq!(run.stores[0], run.stores[3]);
    }

    #[test]
    fn equivocating_primary_is_caught_and_rotated_out() {
        let n = 4;
        let byz = 1usize;
        let cfg = SmrConfig::new(n, 1, 9, 2).unwrap();
        let hooks = (0..n)
            .map(|i| {
                if i == byz {
                    Box::new(EquivocatingPrimary::default()) as Box<dyn SmrHooks>
                } else {
                    HonestReplica::boxed()
                }
            })
            .collect();
        let run = simulate_smr(&cfg, workloads(n, 3), hooks, MetricsSink::new());
        let honest: Vec<usize> = (0..n).filter(|&i| i != byz).collect();
        for w in honest.windows(2) {
            assert_eq!(run.reports[w[0]].agreed_log(), run.reports[w[1]].agreed_log());
            assert_eq!(run.stores[w[0]], run.stores[w[1]]);
        }
        let r = &run.reports[honest[0]];
        // Slot 1 (the Byzantine replica's first turn) fell back...
        let s1 = &r.slots[1];
        assert_eq!(s1.primary, byz);
        assert!(s1.fallback && s1.committed.is_empty() && s1.diagnosis_ran);
        // ...and the replica never led again.
        assert!(r.suspects.contains(&byz));
        assert!(r.slots[2..].iter().all(|s| s.primary != byz));
        assert_eq!(r.fallback_slots, 1);
    }

    #[test]
    fn pipelined_honest_log_matches_sequential_in_fewer_rounds() {
        let n = 4;
        let seq_cfg = SmrConfig::new(n, 1, 12, 2).unwrap();
        let seq = simulate_smr(
            &seq_cfg,
            workloads(n, 4),
            (0..n).map(|_| HonestReplica::boxed()).collect(),
            MetricsSink::new(),
        );
        for w in [2usize, 4] {
            let cfg = seq_cfg.clone().with_pipeline(w);
            let run = simulate_smr(
                &cfg,
                workloads(n, 4),
                (0..n).map(|_| HonestReplica::boxed()).collect(),
                MetricsSink::new(),
            );
            for (a, b) in run.reports.iter().zip(&seq.reports) {
                assert_eq!(a.agreed_log(), b.agreed_log(), "W = {w}: log diverged");
                assert_eq!(a.digest, b.digest);
                assert_eq!(a.restarts, 0, "honest runs never discard");
            }
            assert_eq!(run.stores, seq.stores);
            assert!(
                run.rounds < seq.rounds,
                "W = {w}: {} rounds not below sequential {}",
                run.rounds,
                seq.rounds
            );
        }
    }

    #[test]
    fn pipelined_equivocating_primary_commits_the_sequential_log() {
        let n = 4;
        let byz = 1usize;
        let mk_hooks = || -> Vec<Box<dyn SmrHooks>> {
            (0..n)
                .map(|i| {
                    if i == byz {
                        Box::new(EquivocatingPrimary::default()) as Box<dyn SmrHooks>
                    } else {
                        HonestReplica::boxed()
                    }
                })
                .collect()
        };
        let seq_cfg = SmrConfig::new(n, 1, 9, 2).unwrap();
        let seq = simulate_smr(&seq_cfg, workloads(n, 3), mk_hooks(), MetricsSink::new());
        let cfg = seq_cfg.clone().with_pipeline(4);
        let run = simulate_smr(&cfg, workloads(n, 3), mk_hooks(), MetricsSink::new());
        let honest: Vec<usize> = (0..n).filter(|&i| i != byz).collect();
        for &h in &honest {
            assert_eq!(run.reports[h].agreed_log(), seq.reports[h].agreed_log());
            assert_eq!(run.reports[h].digest, seq.reports[h].digest);
            assert_eq!(run.stores[h], seq.stores[h]);
            // The equivocation commit wiped the in-flight window once.
            assert!(run.reports[h].restarts > 0, "expected discarded attempts");
        }
    }

    #[test]
    fn pipeline_depth_validation() {
        let cfg = SmrConfig::new(4, 1, 4, 2).unwrap();
        assert_eq!(cfg.pipeline, 1);
        assert_eq!(cfg.clone().with_pipeline(4).pipeline, 4);
        let result = std::panic::catch_unwind(|| cfg.with_pipeline(0));
        assert!(result.is_err(), "depth 0 must be rejected");
    }

    #[test]
    fn round_barrier_commit_vtimes_are_cumulative_rounds() {
        let n = 4;
        let cfg = SmrConfig::new(n, 1, 4, 2).unwrap();
        let hooks = (0..n).map(|_| HonestReplica::boxed()).collect();
        let run = simulate_smr(&cfg, workloads(n, 1), hooks, MetricsSink::new());
        assert_eq!(run.vtime, run.rounds);
        let r = &run.reports[0];
        let mut elapsed = 0;
        for s in &r.slots {
            elapsed += s.rounds;
            assert_eq!(s.commit_vtime, elapsed, "slot {} commit clock", s.slot);
        }
    }

    #[test]
    fn event_driven_log_commits_on_the_latency_clock() {
        use mvbc_netsim::{LinkModel, NetModel, SchedulingPolicy, Topology};
        let n = 4;
        let model = NetModel::new(LinkModel::Fixed(100), Topology::Clique);
        let cfg = SmrConfig::new(n, 1, 4, 2)
            .unwrap()
            .with_policy(SchedulingPolicy::EventDriven(model));
        let hooks = (0..n).map(|_| HonestReplica::boxed()).collect();
        let run = simulate_smr(&cfg, workloads(n, 1), hooks, MetricsSink::new());
        for w in run.reports.windows(2) {
            assert_eq!(w[0].agreed_log(), w[1].agreed_log());
            assert_eq!(w[0].digest, w[1].digest);
        }
        let r = &run.reports[0];
        assert_eq!(r.committed_commands, n as u64);
        assert!(
            r.slots.windows(2).all(|w| w[0].commit_vtime < w[1].commit_vtime),
            "commit clocks advance slot to slot"
        );
        assert!(r.slots.last().unwrap().commit_vtime <= run.vtime);
        // Message-free rounds cost only compute ticks, but every slot
        // carries traffic, so the run pays the 100-tick hop per slot at
        // minimum — far beyond the round-barrier clock (== rounds).
        assert!(
            run.vtime >= 100 * cfg.slots as u64,
            "virtual time {} below one link hop per slot",
            run.vtime
        );
        assert!(run.vtime > run.rounds);
    }

    #[test]
    fn smr_max_vtime_budget_is_enforced() {
        use mvbc_netsim::{LinkModel, NetModel, SchedulingPolicy, Topology};
        let n = 4;
        let model = NetModel::new(LinkModel::Fixed(1000), Topology::Clique);
        let cfg = SmrConfig::new(n, 1, 8, 2)
            .unwrap()
            .with_policy(SchedulingPolicy::EventDriven(model))
            .with_max_vtime(1500);
        let hooks = (0..n).map(|_| HonestReplica::boxed()).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            simulate_smr(&cfg, workloads(n, 1), hooks, MetricsSink::new())
        }));
        let err = result.expect_err("a 1000-tick link blows a 1500-tick budget");
        let msg = err
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap_or_default();
        assert!(msg.contains("virtual time limit 1500 exceeded"), "got: {msg}");
    }

    #[test]
    fn per_slot_deltas_cover_the_run() {
        let n = 4;
        let cfg = SmrConfig::new(n, 1, 4, 2).unwrap();
        let hooks = (0..n).map(|_| HonestReplica::boxed()).collect();
        let metrics = MetricsSink::new();
        let run = simulate_smr(&cfg, workloads(n, 1), hooks, metrics.clone());
        let r = &run.reports[0];
        assert!(r.slots.iter().all(|s| s.rounds > 0));
        let per_slot_rounds: u64 = r.slots.iter().map(|s| s.rounds).sum();
        assert_eq!(per_slot_rounds, run.rounds);
        let own_bits: u64 = r.slots.iter().map(|s| s.bits_sent_by_me).sum();
        assert_eq!(own_bits, metrics.snapshot().logical_bits_by_node(0));
    }
}
