//! Primary rotation over the shared diagnosis state.

use mvbc_core::DiagGraph;

/// The agreed leadership decision for one slot (see [`plan_for_slot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotPlan {
    /// The slot is led by this replica: it proposes a batch and the slot
    /// runs a broadcast.
    Lead(usize),
    /// **Degraded mode**: every active replica is a suspect, so *no one*
    /// is given proposal rights — the slot commits the agreed empty batch
    /// at every fault-free replica without any broadcast. The carried id
    /// is the deterministic rotation pick over the active set, recorded
    /// for reporting only.
    ///
    /// This replaces the unsafe fallback of re-electing from the full
    /// active pool, under which a caught equivocator could become primary
    /// again and put a proposal on the wire.
    DegradedEmpty(usize),
    /// No active replica exists at all (impossible with `t < n/3` and an
    /// honest majority): the log stalls.
    Stall,
}

/// Plans the slot's leadership: round-robin over the replicas that are
/// neither isolated by the diagnosis graph nor marked as suspects by the
/// log's dispute memory.
///
/// Both inputs are common knowledge at every fault-free replica (the
/// graph is driven by `Broadcast_Single_Bit` outputs, the suspect set by
/// deterministic rules over it), so all replicas compute the same plan
/// without communicating.
///
/// When *every* active replica is a suspect, the answer is
/// [`SlotPlan::DegradedEmpty`]: the rotation stays deterministic (it
/// still cycles over the active set, so reports agree on a nominal
/// primary) but no suspect regains proposal rights — the slot commits
/// empty everywhere. [`SlotPlan::Stall`] only when no replica is active.
pub fn plan_for_slot(slot: u64, diag: &DiagGraph, suspects: &[bool]) -> SlotPlan {
    let active = diag.active_ids();
    if active.is_empty() {
        return SlotPlan::Stall;
    }
    let eligible: Vec<usize> = active
        .iter()
        .copied()
        .filter(|&v| !suspects.get(v).copied().unwrap_or(false))
        .collect();
    if eligible.is_empty() {
        return SlotPlan::DegradedEmpty(active[(slot % active.len() as u64) as usize]);
    }
    SlotPlan::Lead(eligible[(slot % eligible.len() as u64) as usize])
}

/// Picks the nominal primary of `slot`: the [`plan_for_slot`] choice,
/// whether or not it holds proposal rights ([`SlotPlan::DegradedEmpty`]
/// yields the rotation pick, `None` only on [`SlotPlan::Stall`]).
///
/// Engine code should use [`plan_for_slot`] directly — in degraded mode
/// the returned replica must **not** be allowed to propose.
pub fn primary_for_slot(slot: u64, diag: &DiagGraph, suspects: &[bool]) -> Option<usize> {
    match plan_for_slot(slot, diag, suspects) {
        SlotPlan::Lead(p) | SlotPlan::DegradedEmpty(p) => Some(p),
        SlotPlan::Stall => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_over_all_when_clean() {
        let diag = DiagGraph::new(4, 1);
        let suspects = vec![false; 4];
        let order: Vec<usize> = (0..8)
            .map(|s| primary_for_slot(s, &diag, &suspects).unwrap())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(plan_for_slot(2, &diag, &suspects), SlotPlan::Lead(2));
    }

    #[test]
    fn skips_suspects_and_isolated() {
        let mut diag = DiagGraph::new(4, 1);
        diag.isolate(3);
        let mut suspects = vec![false; 4];
        suspects[1] = true;
        let order: Vec<usize> = (0..4)
            .map(|s| primary_for_slot(s, &diag, &suspects).unwrap())
            .collect();
        assert_eq!(order, vec![0, 2, 0, 2]);
    }

    #[test]
    fn all_suspect_falls_back_to_active_set() {
        let diag = DiagGraph::new(3, 0);
        let suspects = vec![true; 3];
        assert_eq!(primary_for_slot(1, &diag, &suspects), Some(1));
    }

    #[test]
    fn all_suspect_is_degraded_and_grants_no_proposal_rights() {
        // A caught equivocator (or any suspect) must never come back as a
        // proposing primary: with every active replica suspect, every
        // slot plans the agreed-empty fallback, deterministically.
        let diag = DiagGraph::new(3, 0);
        let suspects = vec![true; 3];
        let plans: Vec<SlotPlan> = (0..6).map(|s| plan_for_slot(s, &diag, &suspects)).collect();
        assert_eq!(
            plans,
            vec![
                SlotPlan::DegradedEmpty(0),
                SlotPlan::DegradedEmpty(1),
                SlotPlan::DegradedEmpty(2),
                SlotPlan::DegradedEmpty(0),
                SlotPlan::DegradedEmpty(1),
                SlotPlan::DegradedEmpty(2),
            ]
        );
        assert!(plans.iter().all(|p| !matches!(p, SlotPlan::Lead(_))));
    }

    #[test]
    fn degraded_rotation_skips_isolated_replicas() {
        // The nominal degraded rotation is over the *active* set: an
        // isolated replica appears in no plan at all.
        let mut diag = DiagGraph::new(4, 1);
        diag.isolate(2);
        let suspects = vec![true; 4];
        let plans: Vec<SlotPlan> = (0..3).map(|s| plan_for_slot(s, &diag, &suspects)).collect();
        assert_eq!(
            plans,
            vec![
                SlotPlan::DegradedEmpty(0),
                SlotPlan::DegradedEmpty(1),
                SlotPlan::DegradedEmpty(3),
            ]
        );
    }

    #[test]
    fn no_active_replicas_yields_none() {
        let mut diag = DiagGraph::new(2, 0);
        diag.isolate(0);
        diag.isolate(1);
        assert_eq!(primary_for_slot(0, &diag, &[false, false]), None);
        assert_eq!(plan_for_slot(0, &diag, &[false, false]), SlotPlan::Stall);
    }
}
