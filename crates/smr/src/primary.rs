//! Primary rotation over the shared diagnosis state.

use mvbc_core::DiagGraph;

/// Picks the primary of `slot`: round-robin over the replicas that are
/// neither isolated by the diagnosis graph nor marked as suspects by the
/// log's dispute memory.
///
/// Both inputs are common knowledge at every fault-free replica (the
/// graph is driven by `Broadcast_Single_Bit` outputs, the suspect set by
/// deterministic rules over it), so all replicas compute the same primary
/// without communicating.
///
/// When *every* active replica is a suspect the rotation falls back to
/// the full active set rather than stalling the log; `None` only when no
/// replica is active at all (impossible with `t < n/3` honest majority).
pub fn primary_for_slot(slot: u64, diag: &DiagGraph, suspects: &[bool]) -> Option<usize> {
    let active = diag.active_ids();
    let eligible: Vec<usize> = active
        .iter()
        .copied()
        .filter(|&v| !suspects.get(v).copied().unwrap_or(false))
        .collect();
    let pool = if eligible.is_empty() { active } else { eligible };
    if pool.is_empty() {
        return None;
    }
    Some(pool[(slot % pool.len() as u64) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_over_all_when_clean() {
        let diag = DiagGraph::new(4, 1);
        let suspects = vec![false; 4];
        let order: Vec<usize> = (0..8)
            .map(|s| primary_for_slot(s, &diag, &suspects).unwrap())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_suspects_and_isolated() {
        let mut diag = DiagGraph::new(4, 1);
        diag.isolate(3);
        let mut suspects = vec![false; 4];
        suspects[1] = true;
        let order: Vec<usize> = (0..4)
            .map(|s| primary_for_slot(s, &diag, &suspects).unwrap())
            .collect();
        assert_eq!(order, vec![0, 2, 0, 2]);
    }

    #[test]
    fn all_suspect_falls_back_to_active_set() {
        let diag = DiagGraph::new(3, 0);
        let suspects = vec![true; 3];
        assert_eq!(primary_for_slot(1, &diag, &suspects), Some(1));
    }

    #[test]
    fn no_active_replicas_yields_none() {
        let mut diag = DiagGraph::new(2, 0);
        diag.isolate(0);
        diag.isolate(1);
        assert_eq!(primary_for_slot(0, &diag, &[false, false]), None);
    }
}
