//! Structured run reports: where a replicated-log run's time went.
//!
//! [`RunReport`] condenses a telemetry-instrumented SMR run (a sink built
//! with [`MetricsSink::with_telemetry`]) into one JSON artifact: commit
//! latency percentiles, per-phase virtual-time shares, per-node and
//! per-link top-k tables, queue-depth high-water marks, partition outage
//! windows, and the per-slot commit timeline. The CLI surfaces it as
//! `smr --report <path>` and reads it back with `inspect <path>`.
//!
//! Everything in the report is derived from the *virtual* clock and
//! message counters, so under a fixed seed the JSON is byte-identical
//! across runs and machines — wall-clock span durations stay available on
//! [`TelemetrySnapshot::spans`](mvbc_metrics::TelemetrySnapshot) but are
//! deliberately excluded here.
//!
//! The workspace has no external JSON dependency, so this module carries
//! its own renderer and a minimal recursive-descent parser ([`JsonValue`])
//! for reading reports back.

use std::fmt::Write as _;

use mvbc_metrics::{Histogram, MetricsSink};

use crate::log::{SmrConfig, SmrRun, COMMIT_GAP_TAG, COMMIT_VTIME_TAG};

/// Schema marker embedded in every report.
pub const RUN_REPORT_SCHEMA: &str = "mvbc.run_report.v1";

/// Rows kept in the per-node and per-link top-k tables.
pub const TOP_K: usize = 8;

/// Percentile summary of a latency histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a histogram.
    pub fn of(hist: &Histogram) -> Self {
        LatencySummary {
            count: hist.count(),
            p50: hist.percentile(50.0),
            p90: hist.percentile(90.0),
            p99: hist.percentile(99.0),
            max: hist.max(),
        }
    }
}

/// One protocol phase's share of the run's span time.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseShare {
    /// Phase name (`"propose"`, `"dispersal"`, `"echo"`, `"vote"`,
    /// `"diagnosis"`, `"commit"`).
    pub phase: String,
    /// Total virtual-time ticks spent in this phase, summed over all
    /// nodes and slots.
    pub vtime: u64,
    /// This phase's percentage of all phase time (the shares of a report
    /// sum to ~100, modulo rounding).
    pub share_pct: f64,
}

/// One node's traffic totals (a top-k row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeActivity {
    /// Node id.
    pub node: usize,
    /// Messages sent.
    pub messages: u64,
    /// Logical bits sent.
    pub logical_bits: u64,
    /// Payload bytes sent.
    pub payload_bytes: u64,
}

/// One directed link's delivery totals (a top-k row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkActivity {
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub payload_bytes: u64,
    /// Cumulative delivery delay in ticks.
    pub total_delay: u64,
    /// Mean per-message delay in ticks.
    pub mean_delay: f64,
}

/// One partition outage window (as reported).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutageReport {
    /// Virtual time the cut starts.
    pub start: u64,
    /// Virtual time the cut heals.
    pub heal: u64,
    /// `"drop"` or `"delay"`.
    pub behavior: String,
    /// Messages lost to the cut.
    pub dropped: u64,
    /// Messages held until the heal.
    pub delayed: u64,
}

/// One slot's commit, on the report's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotTimeline {
    /// Slot index.
    pub slot: u64,
    /// Primary that proposed it.
    pub primary: usize,
    /// Virtual time it committed (as observed by replica 0).
    pub commit_vtime: u64,
    /// Whether it fell back to the empty batch.
    pub fallback: bool,
    /// Commands committed.
    pub commands: u64,
    /// Synchronous rounds the slot took.
    pub rounds: u64,
}

/// The structured artifact of one instrumented replicated-log run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Number of replicas.
    pub n: usize,
    /// Fault tolerance.
    pub t: usize,
    /// Configured slots.
    pub slots: usize,
    /// Batch capacity in commands.
    pub batch_commands: usize,
    /// Pipeline depth.
    pub pipeline: usize,
    /// Scheduling policy name.
    pub policy: String,
    /// Synchronous rounds executed.
    pub rounds: u64,
    /// Final virtual time.
    pub final_vtime: u64,
    /// Commands committed across the log.
    pub committed_commands: u64,
    /// Slots that fell back to the empty batch.
    pub fallback_slots: u64,
    /// Percentiles of per-slot commit *times* (when slots landed).
    pub commit_vtime: LatencySummary,
    /// Percentiles of per-slot commit *gaps* (inter-commit latency).
    pub commit_gap: LatencySummary,
    /// Per-phase virtual-time totals and shares.
    pub phases: Vec<PhaseShare>,
    /// Top-k nodes by logical bits sent.
    pub nodes: Vec<NodeActivity>,
    /// Top-k links by cumulative delivery delay (event-driven runs only).
    pub links: Vec<LinkActivity>,
    /// Largest delivery-queue depth the scheduler observed.
    pub queue_high_water: u64,
    /// Partition outage windows.
    pub outages: Vec<OutageReport>,
    /// Per-slot commit timeline.
    pub timeline: Vec<SlotTimeline>,
}

impl RunReport {
    /// Builds a report from a finished run and the sink it ran with.
    ///
    /// The sink should have been created with
    /// [`MetricsSink::with_telemetry`]; without a recorder the latency,
    /// phase and link sections come out empty (counters and the timeline
    /// still fill in).
    pub fn build(cfg: &SmrConfig, run: &SmrRun, metrics: &MetricsSink) -> RunReport {
        let snapshot = metrics.snapshot();
        let telemetry = metrics.telemetry().map(|t| t.snapshot()).unwrap_or_default();

        let commit_vtime = LatencySummary::of(&telemetry.histogram_for_tag(COMMIT_VTIME_TAG));
        let commit_gap = LatencySummary::of(&telemetry.histogram_for_tag(COMMIT_GAP_TAG));

        let phase_totals = telemetry.phase_totals();
        let total_phase_vtime: u64 = phase_totals.values().map(|&(v, _)| v).sum();
        let phases = phase_totals
            .iter()
            .map(|(phase, &(vtime, _))| PhaseShare {
                phase: phase.clone(),
                vtime,
                share_pct: if total_phase_vtime == 0 {
                    0.0
                } else {
                    vtime as f64 * 100.0 / total_phase_vtime as f64
                },
            })
            .collect();

        let mut nodes: Vec<NodeActivity> = (0..cfg.n)
            .map(|node| {
                let c = snapshot.counter_for_node(node);
                NodeActivity {
                    node,
                    messages: c.messages,
                    logical_bits: c.logical_bits,
                    payload_bytes: c.payload_bytes,
                }
            })
            .collect();
        nodes.sort_by(|a, b| (b.logical_bits, a.node).cmp(&(a.logical_bits, b.node)));
        nodes.truncate(TOP_K);

        let mut links: Vec<LinkActivity> = telemetry
            .links
            .iter()
            .map(|(&(from, to), stat)| LinkActivity {
                from,
                to,
                messages: stat.messages,
                payload_bytes: stat.payload_bytes,
                total_delay: stat.total_delay,
                mean_delay: stat.mean_delay(),
            })
            .collect();
        links.sort_by(|a, b| (b.total_delay, a.from, a.to).cmp(&(a.total_delay, b.from, b.to)));
        links.truncate(TOP_K);

        let report = &run.reports[0];
        RunReport {
            n: cfg.n,
            t: cfg.t,
            slots: cfg.slots,
            batch_commands: cfg.batch_capacity(),
            pipeline: cfg.pipeline.max(1),
            policy: cfg.policy.name().to_owned(),
            rounds: run.rounds,
            final_vtime: run.vtime,
            committed_commands: report.committed_commands,
            fallback_slots: report.fallback_slots,
            commit_vtime,
            commit_gap,
            phases,
            nodes,
            links,
            queue_high_water: telemetry.queue_high_water,
            outages: telemetry
                .outages
                .iter()
                .map(|o| OutageReport {
                    start: o.start,
                    heal: o.heal,
                    behavior: o.behavior.clone(),
                    dropped: o.dropped,
                    delayed: o.delayed,
                })
                .collect(),
            timeline: report
                .slots
                .iter()
                .map(|s| SlotTimeline {
                    slot: s.slot,
                    primary: s.primary,
                    commit_vtime: s.commit_vtime,
                    fallback: s.fallback,
                    commands: s.committed.len() as u64,
                    rounds: s.rounds,
                })
                .collect(),
        }
    }

    /// Renders the report as JSON. Deterministic: a fixed seed yields a
    /// byte-identical document (no wall-clock values, no map iteration
    /// nondeterminism).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{RUN_REPORT_SCHEMA}\",");
        let _ = writeln!(
            out,
            "  \"config\": {{\"n\": {}, \"t\": {}, \"slots\": {}, \"batch_commands\": {}, \"pipeline\": {}, \"policy\": \"{}\"}},",
            self.n,
            self.t,
            self.slots,
            self.batch_commands,
            self.pipeline,
            escape_json(&self.policy)
        );
        let _ = writeln!(out, "  \"rounds\": {},", self.rounds);
        let _ = writeln!(out, "  \"final_vtime\": {},", self.final_vtime);
        let _ = writeln!(out, "  \"committed_commands\": {},", self.committed_commands);
        let _ = writeln!(out, "  \"fallback_slots\": {},", self.fallback_slots);
        let summary = |s: &LatencySummary| {
            format!(
                "{{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                s.count, s.p50, s.p90, s.p99, s.max
            )
        };
        let _ = writeln!(out, "  \"commit_vtime\": {},", summary(&self.commit_vtime));
        let _ = writeln!(out, "  \"commit_gap\": {},", summary(&self.commit_gap));
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"phase\": \"{}\", \"vtime\": {}, \"share_pct\": {:.4}}}",
                    escape_json(&p.phase),
                    p.vtime,
                    p.share_pct
                )
            })
            .collect();
        let _ = writeln!(out, "  \"phases\": [{}],", phases.join(", "));
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                format!(
                    "{{\"node\": {}, \"messages\": {}, \"logical_bits\": {}, \"payload_bytes\": {}}}",
                    n.node, n.messages, n.logical_bits, n.payload_bytes
                )
            })
            .collect();
        let _ = writeln!(out, "  \"nodes\": [{}],", nodes.join(", "));
        let links: Vec<String> = self
            .links
            .iter()
            .map(|l| {
                format!(
                    "{{\"from\": {}, \"to\": {}, \"messages\": {}, \"payload_bytes\": {}, \"total_delay\": {}, \"mean_delay\": {:.2}}}",
                    l.from, l.to, l.messages, l.payload_bytes, l.total_delay, l.mean_delay
                )
            })
            .collect();
        let _ = writeln!(out, "  \"links\": [{}],", links.join(", "));
        let _ = writeln!(out, "  \"queue_high_water\": {},", self.queue_high_water);
        let outages: Vec<String> = self
            .outages
            .iter()
            .map(|o| {
                format!(
                    "{{\"start\": {}, \"heal\": {}, \"behavior\": \"{}\", \"dropped\": {}, \"delayed\": {}}}",
                    o.start,
                    o.heal,
                    escape_json(&o.behavior),
                    o.dropped,
                    o.delayed
                )
            })
            .collect();
        let _ = writeln!(out, "  \"outages\": [{}],", outages.join(", "));
        let timeline: Vec<String> = self
            .timeline
            .iter()
            .map(|s| {
                format!(
                    "{{\"slot\": {}, \"primary\": {}, \"commit_vtime\": {}, \"fallback\": {}, \"commands\": {}, \"rounds\": {}}}",
                    s.slot, s.primary, s.commit_vtime, s.fallback, s.commands, s.rounds
                )
            })
            .collect();
        let _ = writeln!(out, "  \"timeline\": [{}]", timeline.join(", "));
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a report back from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let root = parse_json(text)?;
        let schema = root.get("schema").and_then(JsonValue::as_str).unwrap_or("");
        if schema != RUN_REPORT_SCHEMA {
            return Err(format!("not a run report (schema {schema:?})"));
        }
        let config = root.get("config").ok_or("missing config")?;
        let u = |v: &JsonValue, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let summary = |key: &str| -> Result<LatencySummary, String> {
            let v = root.get(key).ok_or_else(|| format!("missing {key:?}"))?;
            Ok(LatencySummary {
                count: u(v, "count")?,
                p50: u(v, "p50")?,
                p90: u(v, "p90")?,
                p99: u(v, "p99")?,
                max: u(v, "max")?,
            })
        };
        let arr = |key: &str| -> Result<Vec<JsonValue>, String> {
            Ok(root
                .get(key)
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("missing array {key:?}"))?
                .to_vec())
        };
        Ok(RunReport {
            n: u(config, "n")? as usize,
            t: u(config, "t")? as usize,
            slots: u(config, "slots")? as usize,
            batch_commands: u(config, "batch_commands")? as usize,
            pipeline: u(config, "pipeline")? as usize,
            policy: config
                .get("policy")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_owned(),
            rounds: u(&root, "rounds")?,
            final_vtime: u(&root, "final_vtime")?,
            committed_commands: u(&root, "committed_commands")?,
            fallback_slots: u(&root, "fallback_slots")?,
            commit_vtime: summary("commit_vtime")?,
            commit_gap: summary("commit_gap")?,
            phases: arr("phases")?
                .iter()
                .map(|p| {
                    Ok(PhaseShare {
                        phase: p
                            .get("phase")
                            .and_then(JsonValue::as_str)
                            .ok_or("phase name")?
                            .to_owned(),
                        vtime: u(p, "vtime")?,
                        share_pct: p
                            .get("share_pct")
                            .and_then(JsonValue::as_f64)
                            .ok_or("share_pct")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            nodes: arr("nodes")?
                .iter()
                .map(|v| {
                    Ok(NodeActivity {
                        node: u(v, "node")? as usize,
                        messages: u(v, "messages")?,
                        logical_bits: u(v, "logical_bits")?,
                        payload_bytes: u(v, "payload_bytes")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            links: arr("links")?
                .iter()
                .map(|v| {
                    Ok(LinkActivity {
                        from: u(v, "from")? as usize,
                        to: u(v, "to")? as usize,
                        messages: u(v, "messages")?,
                        payload_bytes: u(v, "payload_bytes")?,
                        total_delay: u(v, "total_delay")?,
                        mean_delay: v
                            .get("mean_delay")
                            .and_then(JsonValue::as_f64)
                            .ok_or("mean_delay")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            queue_high_water: u(&root, "queue_high_water")?,
            outages: arr("outages")?
                .iter()
                .map(|v| {
                    Ok(OutageReport {
                        start: u(v, "start")?,
                        heal: u(v, "heal")?,
                        behavior: v
                            .get("behavior")
                            .and_then(JsonValue::as_str)
                            .ok_or("behavior")?
                            .to_owned(),
                        dropped: u(v, "dropped")?,
                        delayed: u(v, "delayed")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            timeline: arr("timeline")?
                .iter()
                .map(|v| {
                    Ok(SlotTimeline {
                        slot: u(v, "slot")?,
                        primary: u(v, "primary")? as usize,
                        commit_vtime: u(v, "commit_vtime")?,
                        fallback: v
                            .get("fallback")
                            .and_then(JsonValue::as_bool)
                            .ok_or("fallback")?,
                        commands: u(v, "commands")?,
                        rounds: u(v, "rounds")?,
                    })
                })
                .collect::<Result<_, String>>()?,
        })
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value (the workspace has no external JSON dependency;
/// this is the minimal reader for run reports and bench artifacts).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a byte offset and description for the first syntax error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        let c = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            b => out.push(b),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_scalars_and_nesting() {
        let v = parse_json(
            r#"{"a": 1, "b": [true, false, null], "c": {"d": "x\ny", "e": -2.5}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        let b = v.get("b").and_then(JsonValue::as_array).unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[2], JsonValue::Null);
        let c = v.get("c").unwrap();
        assert_eq!(c.get("d").and_then(JsonValue::as_str), Some("x\ny"));
        assert_eq!(c.get("e").and_then(JsonValue::as_f64), Some(-2.5));
        assert_eq!(c.get("e").and_then(JsonValue::as_u64), None);
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te";
        let doc = format!("{{\"k\": \"{}\"}}", escape_json(nasty));
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn report_json_round_trips() {
        let report = RunReport {
            n: 6,
            t: 1,
            slots: 6,
            batch_commands: 2,
            pipeline: 2,
            policy: "event-driven".into(),
            rounds: 120,
            final_vtime: 70_000,
            committed_commands: 12,
            fallback_slots: 0,
            commit_vtime: LatencySummary { count: 36, p50: 30_000, p90: 60_000, p99: 65_000, max: 70_000 },
            commit_gap: LatencySummary { count: 36, p50: 4_000, p90: 9_000, p99: 12_000, max: 15_000 },
            phases: vec![
                PhaseShare { phase: "dispersal".into(), vtime: 100, share_pct: 25.0 },
                PhaseShare { phase: "echo".into(), vtime: 300, share_pct: 75.0 },
            ],
            nodes: vec![NodeActivity { node: 3, messages: 10, logical_bits: 999, payload_bytes: 4 }],
            links: vec![LinkActivity {
                from: 0,
                to: 5,
                messages: 7,
                payload_bytes: 70,
                total_delay: 7_000,
                mean_delay: 1000.0,
            }],
            queue_high_water: 42,
            outages: vec![OutageReport {
                start: 5_000,
                heal: 60_000,
                behavior: "delay".into(),
                dropped: 0,
                delayed: 9,
            }],
            timeline: vec![SlotTimeline {
                slot: 0,
                primary: 0,
                commit_vtime: 9_000,
                fallback: false,
                commands: 2,
                rounds: 24,
            }],
        };
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        assert!(RunReport::from_json("{\"schema\": \"other\"}").is_err());
        assert!(RunReport::from_json("not json").is_err());
    }
}
