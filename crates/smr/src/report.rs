//! Structured run reports: where a replicated-log run's time went.
//!
//! [`RunReport`] condenses a telemetry-instrumented SMR run (a sink built
//! with [`MetricsSink::with_telemetry`]) into one JSON artifact: commit
//! latency percentiles, per-phase virtual-time shares, per-node and
//! per-link top-k tables, queue-depth high-water marks, partition outage
//! windows, and the per-slot commit timeline. The CLI surfaces it as
//! `smr --report <path>` and reads it back with `inspect <path>`.
//!
//! Everything in the report is derived from the *virtual* clock and
//! message counters, so under a fixed seed the JSON is byte-identical
//! across runs and machines — wall-clock span durations stay available on
//! [`TelemetrySnapshot::spans`](mvbc_metrics::TelemetrySnapshot) but are
//! deliberately excluded here.
//!
//! The workspace has no external JSON dependency; the escape helper, the
//! [`JsonValue`] document model and the recursive-descent parser live in
//! [`mvbc_metrics::json`] (shared with the bench manifests and the
//! `mvbc-lint` diagnostics) and are re-exported here for compatibility.

use std::fmt::Write as _;

use mvbc_metrics::json::escape as escape_json;
use mvbc_metrics::{Histogram, MetricsSink};

pub use mvbc_metrics::json::{parse_json, JsonValue};

use crate::log::{SmrConfig, SmrRun, COMMIT_GAP_TAG, COMMIT_VTIME_TAG};

/// Schema marker embedded in every report.
pub const RUN_REPORT_SCHEMA: &str = "mvbc.run_report.v1";

/// Rows kept in the per-node and per-link top-k tables.
pub const TOP_K: usize = 8;

/// Percentile summary of a latency histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a histogram.
    pub fn of(hist: &Histogram) -> Self {
        LatencySummary {
            count: hist.count(),
            p50: hist.percentile(50.0),
            p90: hist.percentile(90.0),
            p99: hist.percentile(99.0),
            max: hist.max(),
        }
    }
}

/// One protocol phase's share of the run's span time.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseShare {
    /// Phase name (`"propose"`, `"dispersal"`, `"echo"`, `"vote"`,
    /// `"diagnosis"`, `"commit"`).
    pub phase: String,
    /// Total virtual-time ticks spent in this phase, summed over all
    /// nodes and slots.
    pub vtime: u64,
    /// This phase's percentage of all phase time (the shares of a report
    /// sum to ~100, modulo rounding).
    pub share_pct: f64,
}

/// One node's traffic totals (a top-k row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeActivity {
    /// Node id.
    pub node: usize,
    /// Messages sent.
    pub messages: u64,
    /// Logical bits sent.
    pub logical_bits: u64,
    /// Payload bytes sent.
    pub payload_bytes: u64,
}

/// One directed link's delivery totals (a top-k row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkActivity {
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub payload_bytes: u64,
    /// Cumulative delivery delay in ticks.
    pub total_delay: u64,
    /// Mean per-message delay in ticks.
    pub mean_delay: f64,
}

/// One partition outage window (as reported).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutageReport {
    /// Virtual time the cut starts.
    pub start: u64,
    /// Virtual time the cut heals.
    pub heal: u64,
    /// `"drop"` or `"delay"`.
    pub behavior: String,
    /// Messages lost to the cut.
    pub dropped: u64,
    /// Messages held until the heal.
    pub delayed: u64,
}

/// One slot's commit, on the report's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotTimeline {
    /// Slot index.
    pub slot: u64,
    /// Primary that proposed it.
    pub primary: usize,
    /// Virtual time it committed (as observed by replica 0).
    pub commit_vtime: u64,
    /// Whether it fell back to the empty batch.
    pub fallback: bool,
    /// Commands committed.
    pub commands: u64,
    /// Synchronous rounds the slot took.
    pub rounds: u64,
}

/// The structured artifact of one instrumented replicated-log run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Number of replicas.
    pub n: usize,
    /// Fault tolerance.
    pub t: usize,
    /// Configured slots.
    pub slots: usize,
    /// Batch capacity in commands.
    pub batch_commands: usize,
    /// Pipeline depth.
    pub pipeline: usize,
    /// Scheduling policy name.
    pub policy: String,
    /// Synchronous rounds executed.
    pub rounds: u64,
    /// Final virtual time.
    pub final_vtime: u64,
    /// Commands committed across the log.
    pub committed_commands: u64,
    /// Slots that fell back to the empty batch.
    pub fallback_slots: u64,
    /// Percentiles of per-slot commit *times* (when slots landed).
    pub commit_vtime: LatencySummary,
    /// Percentiles of per-slot commit *gaps* (inter-commit latency).
    pub commit_gap: LatencySummary,
    /// Per-phase virtual-time totals and shares.
    pub phases: Vec<PhaseShare>,
    /// Top-k nodes by logical bits sent.
    pub nodes: Vec<NodeActivity>,
    /// Top-k links by cumulative delivery delay (event-driven runs only).
    pub links: Vec<LinkActivity>,
    /// Largest delivery-queue depth the scheduler observed.
    pub queue_high_water: u64,
    /// Partition outage windows.
    pub outages: Vec<OutageReport>,
    /// Per-slot commit timeline.
    pub timeline: Vec<SlotTimeline>,
}

impl RunReport {
    /// Builds a report from a finished run and the sink it ran with.
    ///
    /// The sink should have been created with
    /// [`MetricsSink::with_telemetry`]; without a recorder the latency,
    /// phase and link sections come out empty (counters and the timeline
    /// still fill in).
    pub fn build(cfg: &SmrConfig, run: &SmrRun, metrics: &MetricsSink) -> RunReport {
        let snapshot = metrics.snapshot();
        let telemetry = metrics.telemetry().map(|t| t.snapshot()).unwrap_or_default();

        let commit_vtime = LatencySummary::of(&telemetry.histogram_for_tag(COMMIT_VTIME_TAG));
        let commit_gap = LatencySummary::of(&telemetry.histogram_for_tag(COMMIT_GAP_TAG));

        let phase_totals = telemetry.phase_totals();
        let total_phase_vtime: u64 = phase_totals.values().map(|&(v, _)| v).sum();
        let phases = phase_totals
            .iter()
            .map(|(phase, &(vtime, _))| PhaseShare {
                phase: phase.clone(),
                vtime,
                share_pct: if total_phase_vtime == 0 {
                    0.0
                } else {
                    vtime as f64 * 100.0 / total_phase_vtime as f64
                },
            })
            .collect();

        let mut nodes: Vec<NodeActivity> = (0..cfg.n)
            .map(|node| {
                let c = snapshot.counter_for_node(node);
                NodeActivity {
                    node,
                    messages: c.messages,
                    logical_bits: c.logical_bits,
                    payload_bytes: c.payload_bytes,
                }
            })
            .collect();
        nodes.sort_by(|a, b| (b.logical_bits, a.node).cmp(&(a.logical_bits, b.node)));
        nodes.truncate(TOP_K);

        let mut links: Vec<LinkActivity> = telemetry
            .links
            .iter()
            .map(|(&(from, to), stat)| LinkActivity {
                from,
                to,
                messages: stat.messages,
                payload_bytes: stat.payload_bytes,
                total_delay: stat.total_delay,
                mean_delay: stat.mean_delay(),
            })
            .collect();
        links.sort_by(|a, b| (b.total_delay, a.from, a.to).cmp(&(a.total_delay, b.from, b.to)));
        links.truncate(TOP_K);

        let report = &run.reports[0];
        RunReport {
            n: cfg.n,
            t: cfg.t,
            slots: cfg.slots,
            batch_commands: cfg.batch_capacity(),
            pipeline: cfg.pipeline.max(1),
            policy: cfg.policy.name().to_owned(),
            rounds: run.rounds,
            final_vtime: run.vtime,
            committed_commands: report.committed_commands,
            fallback_slots: report.fallback_slots,
            commit_vtime,
            commit_gap,
            phases,
            nodes,
            links,
            queue_high_water: telemetry.queue_high_water,
            outages: telemetry
                .outages
                .iter()
                .map(|o| OutageReport {
                    start: o.start,
                    heal: o.heal,
                    behavior: o.behavior.clone(),
                    dropped: o.dropped,
                    delayed: o.delayed,
                })
                .collect(),
            timeline: report
                .slots
                .iter()
                .map(|s| SlotTimeline {
                    slot: s.slot,
                    primary: s.primary,
                    commit_vtime: s.commit_vtime,
                    fallback: s.fallback,
                    commands: s.committed.len() as u64,
                    rounds: s.rounds,
                })
                .collect(),
        }
    }

    /// Renders the report as JSON. Deterministic: a fixed seed yields a
    /// byte-identical document (no wall-clock values, no map iteration
    /// nondeterminism).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{RUN_REPORT_SCHEMA}\",");
        let _ = writeln!(
            out,
            "  \"config\": {{\"n\": {}, \"t\": {}, \"slots\": {}, \"batch_commands\": {}, \"pipeline\": {}, \"policy\": \"{}\"}},",
            self.n,
            self.t,
            self.slots,
            self.batch_commands,
            self.pipeline,
            escape_json(&self.policy)
        );
        let _ = writeln!(out, "  \"rounds\": {},", self.rounds);
        let _ = writeln!(out, "  \"final_vtime\": {},", self.final_vtime);
        let _ = writeln!(out, "  \"committed_commands\": {},", self.committed_commands);
        let _ = writeln!(out, "  \"fallback_slots\": {},", self.fallback_slots);
        let summary = |s: &LatencySummary| {
            format!(
                "{{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                s.count, s.p50, s.p90, s.p99, s.max
            )
        };
        let _ = writeln!(out, "  \"commit_vtime\": {},", summary(&self.commit_vtime));
        let _ = writeln!(out, "  \"commit_gap\": {},", summary(&self.commit_gap));
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"phase\": \"{}\", \"vtime\": {}, \"share_pct\": {:.4}}}",
                    escape_json(&p.phase),
                    p.vtime,
                    p.share_pct
                )
            })
            .collect();
        let _ = writeln!(out, "  \"phases\": [{}],", phases.join(", "));
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                format!(
                    "{{\"node\": {}, \"messages\": {}, \"logical_bits\": {}, \"payload_bytes\": {}}}",
                    n.node, n.messages, n.logical_bits, n.payload_bytes
                )
            })
            .collect();
        let _ = writeln!(out, "  \"nodes\": [{}],", nodes.join(", "));
        let links: Vec<String> = self
            .links
            .iter()
            .map(|l| {
                format!(
                    "{{\"from\": {}, \"to\": {}, \"messages\": {}, \"payload_bytes\": {}, \"total_delay\": {}, \"mean_delay\": {:.2}}}",
                    l.from, l.to, l.messages, l.payload_bytes, l.total_delay, l.mean_delay
                )
            })
            .collect();
        let _ = writeln!(out, "  \"links\": [{}],", links.join(", "));
        let _ = writeln!(out, "  \"queue_high_water\": {},", self.queue_high_water);
        let outages: Vec<String> = self
            .outages
            .iter()
            .map(|o| {
                format!(
                    "{{\"start\": {}, \"heal\": {}, \"behavior\": \"{}\", \"dropped\": {}, \"delayed\": {}}}",
                    o.start,
                    o.heal,
                    escape_json(&o.behavior),
                    o.dropped,
                    o.delayed
                )
            })
            .collect();
        let _ = writeln!(out, "  \"outages\": [{}],", outages.join(", "));
        let timeline: Vec<String> = self
            .timeline
            .iter()
            .map(|s| {
                format!(
                    "{{\"slot\": {}, \"primary\": {}, \"commit_vtime\": {}, \"fallback\": {}, \"commands\": {}, \"rounds\": {}}}",
                    s.slot, s.primary, s.commit_vtime, s.fallback, s.commands, s.rounds
                )
            })
            .collect();
        let _ = writeln!(out, "  \"timeline\": [{}]", timeline.join(", "));
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a report back from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let root = parse_json(text)?;
        let schema = root.get("schema").and_then(JsonValue::as_str).unwrap_or("");
        if schema != RUN_REPORT_SCHEMA {
            return Err(format!("not a run report (schema {schema:?})"));
        }
        let config = root.get("config").ok_or("missing config")?;
        let u = |v: &JsonValue, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let summary = |key: &str| -> Result<LatencySummary, String> {
            let v = root.get(key).ok_or_else(|| format!("missing {key:?}"))?;
            Ok(LatencySummary {
                count: u(v, "count")?,
                p50: u(v, "p50")?,
                p90: u(v, "p90")?,
                p99: u(v, "p99")?,
                max: u(v, "max")?,
            })
        };
        let arr = |key: &str| -> Result<Vec<JsonValue>, String> {
            Ok(root
                .get(key)
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("missing array {key:?}"))?
                .to_vec())
        };
        Ok(RunReport {
            n: u(config, "n")? as usize,
            t: u(config, "t")? as usize,
            slots: u(config, "slots")? as usize,
            batch_commands: u(config, "batch_commands")? as usize,
            pipeline: u(config, "pipeline")? as usize,
            policy: config
                .get("policy")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_owned(),
            rounds: u(&root, "rounds")?,
            final_vtime: u(&root, "final_vtime")?,
            committed_commands: u(&root, "committed_commands")?,
            fallback_slots: u(&root, "fallback_slots")?,
            commit_vtime: summary("commit_vtime")?,
            commit_gap: summary("commit_gap")?,
            phases: arr("phases")?
                .iter()
                .map(|p| {
                    Ok(PhaseShare {
                        phase: p
                            .get("phase")
                            .and_then(JsonValue::as_str)
                            .ok_or("phase name")?
                            .to_owned(),
                        vtime: u(p, "vtime")?,
                        share_pct: p
                            .get("share_pct")
                            .and_then(JsonValue::as_f64)
                            .ok_or("share_pct")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            nodes: arr("nodes")?
                .iter()
                .map(|v| {
                    Ok(NodeActivity {
                        node: u(v, "node")? as usize,
                        messages: u(v, "messages")?,
                        logical_bits: u(v, "logical_bits")?,
                        payload_bytes: u(v, "payload_bytes")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            links: arr("links")?
                .iter()
                .map(|v| {
                    Ok(LinkActivity {
                        from: u(v, "from")? as usize,
                        to: u(v, "to")? as usize,
                        messages: u(v, "messages")?,
                        payload_bytes: u(v, "payload_bytes")?,
                        total_delay: u(v, "total_delay")?,
                        mean_delay: v
                            .get("mean_delay")
                            .and_then(JsonValue::as_f64)
                            .ok_or("mean_delay")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            queue_high_water: u(&root, "queue_high_water")?,
            outages: arr("outages")?
                .iter()
                .map(|v| {
                    Ok(OutageReport {
                        start: u(v, "start")?,
                        heal: u(v, "heal")?,
                        behavior: v
                            .get("behavior")
                            .and_then(JsonValue::as_str)
                            .ok_or("behavior")?
                            .to_owned(),
                        dropped: u(v, "dropped")?,
                        delayed: u(v, "delayed")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            timeline: arr("timeline")?
                .iter()
                .map(|v| {
                    Ok(SlotTimeline {
                        slot: u(v, "slot")?,
                        primary: u(v, "primary")? as usize,
                        commit_vtime: u(v, "commit_vtime")?,
                        fallback: v
                            .get("fallback")
                            .and_then(JsonValue::as_bool)
                            .ok_or("fallback")?,
                        commands: u(v, "commands")?,
                        rounds: u(v, "rounds")?,
                    })
                })
                .collect::<Result<_, String>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_round_trips() {
        let report = RunReport {
            n: 6,
            t: 1,
            slots: 6,
            batch_commands: 2,
            pipeline: 2,
            policy: "event-driven".into(),
            rounds: 120,
            final_vtime: 70_000,
            committed_commands: 12,
            fallback_slots: 0,
            commit_vtime: LatencySummary { count: 36, p50: 30_000, p90: 60_000, p99: 65_000, max: 70_000 },
            commit_gap: LatencySummary { count: 36, p50: 4_000, p90: 9_000, p99: 12_000, max: 15_000 },
            phases: vec![
                PhaseShare { phase: "dispersal".into(), vtime: 100, share_pct: 25.0 },
                PhaseShare { phase: "echo".into(), vtime: 300, share_pct: 75.0 },
            ],
            nodes: vec![NodeActivity { node: 3, messages: 10, logical_bits: 999, payload_bytes: 4 }],
            links: vec![LinkActivity {
                from: 0,
                to: 5,
                messages: 7,
                payload_bytes: 70,
                total_delay: 7_000,
                mean_delay: 1000.0,
            }],
            queue_high_water: 42,
            outages: vec![OutageReport {
                start: 5_000,
                heal: 60_000,
                behavior: "delay".into(),
                dropped: 0,
                delayed: 9,
            }],
            timeline: vec![SlotTimeline {
                slot: 0,
                primary: 0,
                commit_vtime: 9_000,
                fallback: false,
                commands: 2,
                rounds: 24,
            }],
        };
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        assert!(RunReport::from_json("{\"schema\": \"other\"}").is_err());
        assert!(RunReport::from_json("not json").is_err());
    }
}
