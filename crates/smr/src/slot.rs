//! Per-slot reports and per-slot Byzantine behaviour hooks.

use mvbc_broadcast::attacks::EquivocatingSource;
use mvbc_broadcast::attacks::SilentSource;
use mvbc_broadcast::{BroadcastHooks, NoopBroadcastHooks};
use mvbc_netsim::{NodeId, VirtualTime};

use crate::batch::Command;

/// One replica's record of one committed slot.
///
/// Every field except `bits_sent_by_me` and `commit_vtime` is identical
/// across fault-free replicas (they are all derived from agreed protocol
/// outputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotReport {
    /// Slot index.
    pub slot: u64,
    /// The primary that proposed this slot.
    pub primary: NodeId,
    /// The committed batch (empty on fallback).
    pub committed: Vec<Command>,
    /// True when the slot committed the agreed fallback (empty batch)
    /// because the primary was caught misbehaving or could not be used.
    pub fallback: bool,
    /// Whether any generation of this slot ran the diagnosis stage.
    pub diagnosis_ran: bool,
    /// How many generations of this slot ran the diagnosis stage. The
    /// diagnosis graph persists across the log, so the *sum* of this
    /// field over all slots is bounded by the paper's global dispute
    /// budget `t(t+2)` — campaign checkers assert exactly that.
    pub diagnosis_invocations: u64,
    /// Logical bits *this* replica sent during the slot (exact per-slot
    /// delta; see [`mvbc_metrics::Snapshot::delta`]).
    pub bits_sent_by_me: u64,
    /// Synchronous rounds the slot consumed.
    pub rounds: u64,
    /// *This* replica's virtual clock at the moment the slot committed
    /// ([`NodeCtx::vtime`](mvbc_netsim::NodeCtx::vtime)): the round
    /// counter under the round-barrier policy, the latency-model tick
    /// under the event-driven policy. A local measurement — like
    /// `bits_sent_by_me`, it is excluded from [`AgreedSlot`], and it
    /// depends on the scheduling (a pipelined run commits later slots at
    /// earlier clocks than a sequential one).
    pub commit_vtime: VirtualTime,
}

/// The agreement-relevant view of a [`SlotReport`]: every field that is
/// guaranteed identical at fault-free replicas (everything but the local
/// measurement `bits_sent_by_me`). Compare these across replicas to
/// check log agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgreedSlot<'a> {
    /// Slot index.
    pub slot: u64,
    /// The slot's primary.
    pub primary: NodeId,
    /// The committed batch.
    pub committed: &'a [Command],
    /// Whether the slot committed the fallback batch.
    pub fallback: bool,
    /// Whether diagnosis ran.
    pub diagnosis_ran: bool,
    /// Rounds the slot consumed.
    pub rounds: u64,
}

impl SlotReport {
    /// The agreed-empty record of a **degraded** slot (every active
    /// replica suspect; see
    /// [`SlotPlan::DegradedEmpty`](crate::SlotPlan::DegradedEmpty)): no
    /// broadcast runs, nothing commits, `nominal` is the rotation pick
    /// recorded for reporting only. Shared by the sequential and
    /// pipelined engines so their degraded slots are identical by
    /// construction. `commit_vtime` is the committing replica's clock
    /// when it resolved the slot (degraded slots consume no rounds, so
    /// it is simply the clock carried over from the previous slot).
    pub fn degraded(slot: u64, nominal: NodeId, commit_vtime: VirtualTime) -> Self {
        SlotReport {
            slot,
            primary: nominal,
            committed: Vec::new(),
            fallback: true,
            diagnosis_ran: false,
            diagnosis_invocations: 0,
            bits_sent_by_me: 0,
            rounds: 0,
            commit_vtime,
        }
    }

    /// This slot's [`AgreedSlot`] view.
    pub fn agreed(&self) -> AgreedSlot<'_> {
        AgreedSlot {
            slot: self.slot,
            primary: self.primary,
            committed: &self.committed,
            fallback: self.fallback,
            diagnosis_ran: self.diagnosis_ran,
            rounds: self.rounds,
        }
    }
}

/// Per-replica behaviour of the replicated log: chooses the
/// broadcast-layer hooks each slot runs under.
///
/// The honest implementation is [`HonestReplica`]; Byzantine replicas
/// substitute attack hooks for the slots where they are primary.
pub trait SmrHooks: Send {
    /// Called at the start of every slot *attempt*; returns the broadcast
    /// hooks the replica uses for that attempt's broadcast execution.
    ///
    /// Under a pipelined log
    /// ([`run_replicated_log_pipelined`](crate::run_replicated_log_pipelined))
    /// a slot may be attempted more than once — an attempt in flight when
    /// a commit changes the dispute state is discarded and the slot
    /// re-proposed — so this method can be called several times for one
    /// `slot` and must be deterministic in `(slot, i_am_primary)` for the
    /// pipelined log to commit exactly the sequential log.
    fn slot_hooks(&mut self, slot: u64, i_am_primary: bool) -> Box<dyn BroadcastHooks>;
}

/// A fault-free replica: honest hooks every slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HonestReplica;

impl SmrHooks for HonestReplica {
    fn slot_hooks(&mut self, _slot: u64, _i_am_primary: bool) -> Box<dyn BroadcastHooks> {
        NoopBroadcastHooks::boxed()
    }
}

impl HonestReplica {
    /// Boxed honest behaviour.
    pub fn boxed() -> Box<dyn SmrHooks> {
        Box::new(HonestReplica)
    }
}

/// A replica that equivocates during dispersal whenever it is primary
/// (restricted to `on_slots` when set): the split proposal is detected,
/// the slot falls back everywhere, and the rotation drops the replica.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EquivocatingPrimary {
    /// Slots on which to equivocate (`None` = every primary turn).
    pub on_slots: Option<Vec<u64>>,
}

impl SmrHooks for EquivocatingPrimary {
    fn slot_hooks(&mut self, slot: u64, i_am_primary: bool) -> Box<dyn BroadcastHooks> {
        let armed = i_am_primary
            && self.on_slots.as_ref().is_none_or(|s| s.contains(&slot));
        if armed {
            Box::new(EquivocatingSource)
        } else {
            NoopBroadcastHooks::boxed()
        }
    }
}

/// A replica that never disperses when primary (a crashed/withholding
/// leader): receivers detect the silence, the slot falls back, and the
/// rotation routes around it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SilentPrimary;

impl SmrHooks for SilentPrimary {
    fn slot_hooks(&mut self, _slot: u64, i_am_primary: bool) -> Box<dyn BroadcastHooks> {
        if i_am_primary {
            Box::new(SilentSource)
        } else {
            NoopBroadcastHooks::boxed()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivocating_primary_arms_only_on_its_turn() {
        let mut h = EquivocatingPrimary { on_slots: Some(vec![2]) };
        // Not primary: honest hooks (mutating a dispersal symbol is a
        // pass-through).
        let mut payload = vec![0xAAu8];
        assert!(h.slot_hooks(2, false).dispersal_symbol(0, 1, &mut payload));
        assert_eq!(payload, vec![0xAA]);
        // Primary on the armed slot: odd recipients get corrupted symbols.
        let mut payload = vec![0xAAu8];
        assert!(h.slot_hooks(2, true).dispersal_symbol(0, 1, &mut payload));
        assert_eq!(payload, vec![0x55]);
        // Primary on another slot: honest again.
        let mut payload = vec![0xAAu8];
        assert!(h.slot_hooks(3, true).dispersal_symbol(0, 1, &mut payload));
        assert_eq!(payload, vec![0xAA]);
    }

    #[test]
    fn silent_primary_suppresses_dispersal() {
        let mut h = SilentPrimary;
        let mut payload = vec![1u8];
        assert!(!h.slot_hooks(0, true).dispersal_symbol(0, 1, &mut payload));
        assert!(h.slot_hooks(0, false).dispersal_symbol(0, 1, &mut payload));
    }
}
