//! The replicated state machine applied to committed batches.

use std::collections::BTreeMap;

use crate::batch::Command;

/// A deterministic state machine driven by the committed log.
///
/// All fault-free replicas apply the same batches in the same slot order,
/// so any implementation with deterministic `apply` keeps identical state
/// everywhere; `digest` is how the test-suite (and operators) check that.
pub trait StateMachine {
    /// Applies one committed command.
    fn apply(&mut self, cmd: &Command);

    /// Order-sensitive digest of the current state.
    fn digest(&self) -> u64;

    /// Applies a committed batch in order.
    fn apply_batch(&mut self, batch: &[Command]) {
        for cmd in batch {
            self.apply(cmd);
        }
    }
}

/// The default state machine: an ordered key-value map under `SET`
/// semantics (last write to a key wins).
///
/// # Examples
///
/// ```
/// use mvbc_smr::{Command, KvStore, StateMachine};
///
/// let mut kv = KvStore::default();
/// kv.apply_batch(&[
///     Command { key: 1, value: 10 },
///     Command { key: 1, value: 11 },
/// ]);
/// assert_eq!(kv.get(1), Some(11));
/// assert_eq!(kv.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<u16, u32>,
}

impl KvStore {
    /// Current value under `key`.
    pub fn get(&self, key: u16) -> Option<u32> {
        self.map.get(&key).copied()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no key has been written.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn entries(&self) -> impl Iterator<Item = (u16, u32)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }
}

impl StateMachine for KvStore {
    fn apply(&mut self, cmd: &Command) {
        if !cmd.is_noop() {
            self.map.insert(cmd.key, cmd.value);
        }
    }

    fn digest(&self) -> u64 {
        // FNV-1a over the canonical (key-sorted) entries.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (&k, &v) in &self.map {
            for byte in k.to_be_bytes().into_iter().chain(v.to_be_bytes()) {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics_and_digest() {
        let mut a = KvStore::default();
        let mut b = KvStore::default();
        assert_eq!(a.digest(), b.digest());
        a.apply(&Command { key: 3, value: 30 });
        assert_ne!(a.digest(), b.digest());
        b.apply(&Command { key: 3, value: 30 });
        assert_eq!(a.digest(), b.digest());
        a.apply(&Command { key: 3, value: 31 });
        assert_eq!(a.get(3), Some(31));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn noop_is_not_applied() {
        let mut kv = KvStore::default();
        kv.apply(&Command { key: 0, value: 99 });
        assert!(kv.is_empty());
    }

    #[test]
    fn entries_sorted() {
        let mut kv = KvStore::default();
        kv.apply_batch(&[
            Command { key: 9, value: 1 },
            Command { key: 2, value: 2 },
        ]);
        let keys: Vec<u16> = kv.entries().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![2, 9]);
    }
}
