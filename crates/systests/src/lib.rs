//! Shared helpers for the workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`).
//!
//! This crate carries no protocol logic of its own; see `mvbc-core` for
//! the algorithm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mvbc_core::ProtocolHooks;

/// Deterministic pseudo-random test value of `len` bytes.
pub fn test_value(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

/// `n` honest hook objects.
pub fn honest_hooks(n: usize) -> Vec<Box<dyn ProtocolHooks>> {
    (0..n).map(|_| mvbc_core::NoopHooks::boxed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_value_deterministic() {
        assert_eq!(test_value(16, 7), test_value(16, 7));
        assert_ne!(test_value(16, 7), test_value(16, 8));
        assert_eq!(test_value(16, 7).len(), 16);
    }

    #[test]
    fn honest_hooks_count() {
        assert_eq!(honest_hooks(5).len(), 5);
    }
}
