//! Happy-path smoke test: the quickstart flow (n = 4, t = 1) must
//! decide a 1 KiB value with consistency and validity.
//!
//! The big property suites (`tests/*.rs` at the workspace root) explore
//! the input and adversary space broadly; this test guards the single
//! most basic configuration on its own, so a regression in the
//! fault-free path is reported as exactly one obvious failure instead
//! of a wall of property-case noise.

use mvbc_core::{simulate_consensus, ConsensusConfig};
use mvbc_metrics::MetricsSink;
use mvbc_systests::{honest_hooks, test_value};

#[test]
fn quickstart_n4_t1_1kib_decides() {
    let value_bytes = 1024;
    let cfg = ConsensusConfig::new(4, 1, value_bytes).expect("n = 4, t = 1 is a valid config");
    let value = test_value(value_bytes, 2011);

    let metrics = MetricsSink::new();
    let run = simulate_consensus(
        &cfg,
        vec![value.clone(); 4],
        honest_hooks(4),
        metrics.clone(),
    );

    // Validity: unanimous honest inputs force that exact decision...
    for (id, out) in run.outputs.iter().enumerate() {
        assert_eq!(out, &value, "processor {id} violated validity");
    }
    // ...which also implies consistency; check it independently anyway
    // so a validity-check edit can't silently drop the agreement check.
    for pair in run.outputs.windows(2) {
        assert_eq!(pair[0], pair[1], "processors disagreed");
    }

    // Fault-free runs must not isolate anyone or invoke diagnosis.
    for (id, report) in run.reports.iter().enumerate() {
        assert!(
            report.isolated.is_empty(),
            "processor {id} isolated someone in a fault-free run: {:?}",
            report.isolated
        );
        assert_eq!(
            report.diagnosis_invocations, 0,
            "processor {id} ran diagnosis in a fault-free run"
        );
    }

    // The run actually exchanged messages and terminated in bounded
    // rounds (a degenerate zero-communication "success" is a bug).
    let snap = metrics.snapshot();
    assert!(snap.total_logical_bits() > 0, "no communication recorded");
    assert!(snap.rounds() > 0, "no rounds recorded");
    assert!(
        snap.rounds() < 10_000,
        "fault-free run took implausibly many rounds: {}",
        snap.rounds()
    );
}
