//! Fault-tolerant distributed storage: seven replicas commit a 16 KiB
//! block by consensus while one Byzantine replica actively lies.
//!
//! This is the paper's opening motivation: "the value being agreed upon
//! may be a large file in a fault-tolerant distributed storage system".
//! The example shows (a) the Byzantine replica being diagnosed and its
//! diagnosis-graph edges removed, and (b) the measured communication
//! staying near the `n(n-1)/(n-2t) · L` coefficient instead of the
//! `Ω(n² L)` a bitwise approach would pay.
//!
//! ```sh
//! cargo run -p mvbc-systests --example distributed_storage
//! ```

use mvbc_adversary::CorruptSymbolTo;
use mvbc_core::{dsel, simulate_consensus, ConsensusConfig, NoopHooks, ProtocolHooks};
use mvbc_metrics::MetricsSink;
use mvbc_systests::test_value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (7usize, 2usize);
    let block_len = 16 * 1024;
    let block = test_value(block_len, 0xB10C);
    let cfg = ConsensusConfig::new(n, t, block_len)?;

    // Replica 6 is Byzantine: it corrupts the coded symbols it sends to
    // replicas 0 and 1 during the first two generations.
    let mut hooks: Vec<Box<dyn ProtocolHooks>> = (0..n).map(|_| NoopHooks::boxed()).collect();
    hooks[6] = Box::new(CorruptSymbolTo::for_first_generations(vec![0, 1], 2));

    let metrics = MetricsSink::new();
    let run = simulate_consensus(&cfg, vec![block.clone(); n], hooks, metrics.clone());

    println!("replicated block commit: n = {n}, t = {t}, L = {} KiB", block_len / 1024);
    println!(
        "generations: {} x {} bytes (D* from Eq. (2))",
        cfg.generations(),
        cfg.resolved_gen_bytes()
    );

    for id in 0..n {
        if id == 6 {
            continue;
        }
        assert_eq!(run.outputs[id], block, "replica {id} committed a wrong block");
    }
    let report = &run.reports[0];
    println!(
        "\nByzantine replica 6: {} diagnosis stage(s) ran, {} diagnosis-graph edge(s) removed",
        report.diagnosis_invocations, report.edges_removed
    );
    println!("all fault-free replicas committed the identical block ✓");

    let snap = metrics.snapshot();
    let measured = snap.total_logical_bits() as f64;
    let l_bits = (block_len * 8) as u64;
    let linear = dsel::linear_coefficient(n, t) * l_bits as f64;
    let bitwise = 2.0 * (n * n) as f64 * l_bits as f64;
    println!("\nmeasured:            {measured:>14.0} bits");
    println!("n(n-1)/(n-2t)·L:     {linear:>14.0} bits (the paper's L-linear term)");
    println!("bitwise Ω(n²L) floor:{bitwise:>14.0} bits (what per-bit consensus would pay)");
    println!("advantage vs bitwise: {:.1}x", bitwise / measured);
    Ok(())
}
