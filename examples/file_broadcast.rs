//! Multi-valued Byzantine broadcast (§4): a coordinator distributes a
//! configuration file to a cluster, first honestly, then equivocating.
//!
//! ```sh
//! cargo run -p mvbc-systests --example file_broadcast
//! ```

use mvbc_broadcast::attacks::EquivocatingSource;
use mvbc_broadcast::{simulate_broadcast, BroadcastConfig, NoopBroadcastHooks};
use mvbc_metrics::MetricsSink;
use mvbc_systests::test_value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (7usize, 2usize);
    let file_len = 8 * 1024;
    let file = test_value(file_len, 0xF11E);

    // Honest coordinator (processor 0).
    let cfg = BroadcastConfig::new(n, t, 0, file_len)?;
    let metrics = MetricsSink::new();
    let hooks = (0..n).map(|_| NoopBroadcastHooks::boxed()).collect();
    let run = simulate_broadcast(&cfg, file.clone(), hooks, metrics.clone());
    for (id, out) in run.outputs.iter().enumerate() {
        assert_eq!(*out, file, "processor {id}");
    }
    let total = metrics.snapshot().total_logical_bits() as f64;
    let lower_bound = ((n - 1) * file_len * 8) as f64;
    println!("honest coordinator: every processor received the {file_len}-byte file ✓");
    println!(
        "  cost: {:.0} bits = {:.2}x the (n-1)·L lower bound \
         (companion TR achieves 1.5x; see DESIGN.md §2)",
        total,
        total / lower_bound
    );

    // Equivocating coordinator: sends different halves different symbols.
    let mut hooks: Vec<Box<dyn mvbc_broadcast::BroadcastHooks>> =
        (0..n).map(|_| NoopBroadcastHooks::boxed()).collect();
    hooks[0] = Box::new(EquivocatingSource);
    let run = simulate_broadcast(&cfg, file.clone(), hooks, MetricsSink::new());
    let first = &run.outputs[1];
    for id in 2..n {
        assert_eq!(run.outputs[id], *first, "consistency violated at {id}");
    }
    println!("\nequivocating coordinator:");
    println!(
        "  diagnosis ran {} time(s); all fault-free processors still delivered a COMMON file ✓",
        run.reports[1].diagnosis_invocations
    );
    println!("  (Byzantine broadcast guarantees consistency even against a faulty source.)");
    Ok(())
}
