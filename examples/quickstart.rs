//! Quickstart: four processors reach error-free consensus on a message.
//!
//! ```sh
//! cargo run -p mvbc-systests --example quickstart
//! ```

use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks};
use mvbc_metrics::MetricsSink;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A network of n = 4 processors tolerating t = 1 Byzantine fault,
    // agreeing on a 64-byte value.
    let message = b"error-free multi-valued Byzantine consensus, PODC 2011 style!!!";
    let cfg = ConsensusConfig::new(4, 1, message.len())?;

    // Every processor holds the same input here, so Validity forces the
    // decision to be exactly this message.
    let inputs = vec![message.to_vec(); 4];
    let hooks = (0..4).map(|_| NoopHooks::boxed()).collect();

    let metrics = MetricsSink::new();
    let run = simulate_consensus(&cfg, inputs, hooks, metrics.clone());

    println!("n = {}, t = {}, L = {} bits", cfg.n, cfg.t, message.len() * 8);
    println!("generations: {} x {} bytes", cfg.generations(), cfg.resolved_gen_bytes());
    for (id, out) in run.outputs.iter().enumerate() {
        println!(
            "processor {id} decided: {:?}",
            String::from_utf8_lossy(out)
        );
        assert_eq!(out.as_slice(), message);
    }

    let snap = metrics.snapshot();
    println!(
        "\ncommunication: {} logical bits in {} messages over {} rounds",
        snap.total_logical_bits(),
        snap.total_messages(),
        snap.rounds()
    );
    println!("\nper-stage breakdown:\n{}", snap.to_markdown());
    Ok(())
}
