//! State-machine replication: a replicated key-value store driven by a
//! Byzantine-broadcast command log.
//!
//! The classic application of Byzantine broadcast (and the reason the
//! paper's §4 extension matters in practice): a primary proposes a batch
//! of commands, every replica delivers the *same* batch — even when the
//! primary equivocates — and applies it to its local state machine, so
//! all fault-free replicas stay in lock-step. Three epochs are run with
//! a rotating primary:
//!
//! 1. an honest primary commits a batch of `SET` commands;
//! 2. an *equivocating* primary tries to split the replicas — the
//!    dispersal consistency check catches it and every replica applies
//!    the same fallback (an empty batch) instead of diverging;
//! 3. another honest primary commits again, proving the system recovered.
//!
//! ```sh
//! cargo run -p mvbc-systests --example smr_log
//! ```

use std::collections::BTreeMap;

use mvbc_broadcast::attacks::EquivocatingSource;
use mvbc_broadcast::{simulate_broadcast, BroadcastConfig, BroadcastHooks, NoopBroadcastHooks};
use mvbc_metrics::MetricsSink;

/// One state-machine command: `SET key value`, fixed-width encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Command {
    key: u16,
    value: u32,
}

impl Command {
    const WIRE_BYTES: usize = 6;

    fn encode(&self) -> [u8; Self::WIRE_BYTES] {
        let k = self.key.to_be_bytes();
        let v = self.value.to_be_bytes();
        [k[0], k[1], v[0], v[1], v[2], v[3]]
    }

    fn decode(bytes: &[u8]) -> Option<Command> {
        if bytes.len() != Self::WIRE_BYTES {
            return None;
        }
        Some(Command {
            key: u16::from_be_bytes([bytes[0], bytes[1]]),
            value: u32::from_be_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]),
        })
    }
}

/// Fixed-size command batch (zero-padded; key 0 = no-op) so every epoch
/// broadcasts the same `L`.
fn encode_batch(commands: &[Command], slots: usize) -> Vec<u8> {
    assert!(commands.len() <= slots);
    let mut out = Vec::with_capacity(slots * Command::WIRE_BYTES);
    for c in commands {
        out.extend_from_slice(&c.encode());
    }
    out.resize(slots * Command::WIRE_BYTES, 0);
    out
}

fn decode_batch(bytes: &[u8]) -> Vec<Command> {
    bytes
        .chunks_exact(Command::WIRE_BYTES)
        .filter_map(Command::decode)
        .filter(|c| c.key != 0) // key 0 is padding / no-op
        .collect()
}

/// The replicated state machine: an ordered key-value map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct KvStore {
    map: BTreeMap<u16, u32>,
}

impl KvStore {
    fn apply(&mut self, batch: &[Command]) {
        for c in batch {
            self.map.insert(c.key, c.value);
        }
    }

    fn digest(&self) -> u64 {
        // Order-dependent FNV over the canonical (sorted) entries.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (&k, &v) in &self.map {
            for byte in k.to_be_bytes().into_iter().chain(v.to_be_bytes()) {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

fn main() {
    let n = 4;
    let t = 1;
    let slots = 64;
    let l = slots * Command::WIRE_BYTES;
    let mut replicas: Vec<KvStore> = vec![KvStore::default(); n];

    println!("replicated KV store: {n} replicas, t = {t}, {slots}-command batches\n");

    // --- Epoch 0: honest primary 0 commits a SET batch. ---
    let batch0: Vec<Command> = (1..=10u16).map(|k| Command { key: k, value: u32::from(k) * 100 }).collect();
    commit_epoch(0, 0, &batch0, &mut replicas, n, t, l, false);

    // --- Epoch 1: primary 1 equivocates during dispersal. ---
    let batch1: Vec<Command> = (1..=5u16).map(|k| Command { key: k, value: 0xDEAD }).collect();
    commit_epoch(1, 1, &batch1, &mut replicas, n, t, l, true);

    // --- Epoch 2: honest primary 2 commits again. ---
    let batch2: Vec<Command> = (11..=15u16).map(|k| Command { key: k, value: u32::from(k) * 7 }).collect();
    commit_epoch(2, 2, &batch2, &mut replicas, n, t, l, false);

    // All fault-free replicas must hold identical state. (Replica 1 was
    // Byzantine only as epoch-1 primary; its local state still tracked
    // the agreed log, so all four agree here.)
    let digests: Vec<u64> = replicas.iter().map(KvStore::digest).collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "replicas diverged: {digests:?}");
    println!("\nfinal state digest at every replica: {:016x}", digests[0]);
    println!("entries: {:?}", replicas[0].map);
}

#[allow(clippy::too_many_arguments)]
fn commit_epoch(
    epoch: usize,
    primary: usize,
    batch: &[Command],
    replicas: &mut [KvStore],
    n: usize,
    t: usize,
    l: usize,
    equivocate: bool,
) {
    let cfg = BroadcastConfig::new(n, t, primary, l).expect("valid parameters");
    let value = encode_batch(batch, l / Command::WIRE_BYTES);
    let mut hooks: Vec<Box<dyn BroadcastHooks>> =
        (0..n).map(|_| NoopBroadcastHooks::boxed()).collect();
    if equivocate {
        hooks[primary] = Box::new(EquivocatingSource);
    }
    let run = simulate_broadcast(&cfg, value.clone(), hooks, MetricsSink::new());

    // Every replica applies what *it* delivered — agreement guarantees
    // these are identical, equivocation or not.
    let delivered: Vec<Vec<Command>> = run.outputs.iter().map(|o| decode_batch(o)).collect();
    for w in delivered.windows(2) {
        assert_eq!(w[0], w[1], "epoch {epoch}: replicas delivered different batches");
    }
    for (replica, cmds) in replicas.iter_mut().zip(&delivered) {
        replica.apply(cmds);
    }

    let applied = &delivered[0];
    let verdict = if equivocate {
        if applied.is_empty() { "equivocation caught -> common fallback (no-op batch)" } else { "agreed on one of the primary's stories" }
    } else if value == encode_batch(applied, l / Command::WIRE_BYTES) {
        "committed verbatim (validity)"
    } else {
        "BUG: honest batch altered"
    };
    println!("epoch {epoch}: primary {primary}, {} command(s) -> {verdict}", applied.len());
}
