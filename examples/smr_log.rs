//! State-machine replication: a replicated key-value store driven by the
//! `mvbc-smr` command log.
//!
//! The classic application of Byzantine broadcast (and the reason the
//! paper's §4 extension matters in practice): primaries rotate through
//! the replicas proposing batches of commands, every replica commits the
//! *same* batch per slot — even when a primary equivocates — and applies
//! it to its local state machine, so all fault-free replicas stay in
//! lock-step.
//!
//! Unlike a naive loop of single-shot broadcasts, the whole log runs
//! inside **one** simulation: the diagnosis graph persists across slots,
//! so the replica that equivocates on its first primary turn is caught
//! once and excluded from every later rotation — watch slot 1 fall back
//! and replica 1 never lead again.
//!
//! ```sh
//! cargo run -p mvbc-systests --example smr_log
//! ```

use mvbc_metrics::MetricsSink;
use mvbc_smr::{
    simulate_smr, Command, EquivocatingPrimary, HonestReplica, SmrConfig, SmrHooks,
};

fn main() {
    let n = 4;
    let t = 1;
    let slots = 10;
    let batch = 5;
    let byz = 1usize;
    let cfg = SmrConfig::new(n, t, slots, batch).expect("valid parameters");

    println!(
        "replicated KV store: {n} replicas, t = {t}, {slots} slots x {batch}-command batches"
    );
    println!("replica {byz} equivocates on its primary turns\n");

    // Each replica's clients write to its own key range.
    let workloads: Vec<Vec<Command>> = (0..n)
        .map(|i| {
            (0..10u16)
                .map(|j| Command {
                    key: (i as u16) * 100 + j + 1,
                    value: u32::from(j) * 10 + i as u32,
                })
                .collect()
        })
        .collect();
    let hooks: Vec<Box<dyn SmrHooks>> = (0..n)
        .map(|i| -> Box<dyn SmrHooks> {
            if i == byz {
                Box::new(EquivocatingPrimary::default())
            } else {
                HonestReplica::boxed()
            }
        })
        .collect();

    let metrics = MetricsSink::new();
    let run = simulate_smr(&cfg, workloads, hooks, metrics.clone());

    let honest: Vec<usize> = (0..n).filter(|&i| i != byz).collect();
    let r = &run.reports[honest[0]];
    for s in &r.slots {
        let verdict = if s.fallback {
            "equivocation caught -> common fallback (empty batch)"
        } else {
            "committed"
        };
        println!(
            "slot {:>2}: primary {} -> {} command(s), {verdict}",
            s.slot,
            s.primary,
            s.committed.len()
        );
    }

    // Agreement: every fault-free replica holds the identical log and the
    // identical state machine.
    for w in honest.windows(2) {
        assert_eq!(
            run.reports[w[0]].agreed_log(),
            run.reports[w[1]].agreed_log(),
            "replicas diverged on the log"
        );
        assert_eq!(run.stores[w[0]], run.stores[w[1]], "replicas diverged on state");
    }
    // The caught equivocator is out of the rotation for good.
    assert!(r.suspects.contains(&byz));
    assert!(
        r.slots
            .iter()
            .skip_while(|s| !s.fallback)
            .skip(1)
            .all(|s| s.primary != byz),
        "caught primary led again"
    );

    let snap = metrics.snapshot();
    println!(
        "\ncommitted {} command(s); {} fallback slot(s); suspects: {:?}",
        r.committed_commands, r.fallback_slots, r.suspects
    );
    println!(
        "{} bits over {} rounds; final state digest at every replica: {:016x}",
        snap.total_logical_bits(),
        run.rounds,
        r.digest
    );
}
