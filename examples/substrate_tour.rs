//! A tour of the `Broadcast_Single_Bit` substitution seam (paper §4).
//!
//! The paper's complexity equation Eq. (1) is parameterised by `B`, the
//! cost of a black-box 1-bit Byzantine broadcast, and §4 proposes
//! swapping that black box to trade error-freedom for resilience. This
//! example runs the *same* consensus — same inputs, same Byzantine
//! attacker — under all three substrates shipped by `mvbc-bsb` and
//! prints a comparison: identical decisions, different cost profiles.
//!
//! ```sh
//! cargo run -p mvbc-systests --example substrate_tour
//! ```

use mvbc_adversary::CorruptSymbolTo;
use mvbc_bsb::{BsbDriver, DolevStrongDriver, EigDriver, PhaseKingDriver};
use mvbc_core::{simulate_consensus_with, ConsensusConfig, NoopHooks, ProtocolHooks};
use mvbc_metrics::MetricsSink;

fn fleet(name: &str, n: usize) -> Vec<Box<dyn BsbDriver>> {
    match name {
        "phase-king" => (0..n).map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>).collect(),
        "eig" => (0..n).map(|_| Box::new(EigDriver) as Box<dyn BsbDriver>).collect(),
        _ => DolevStrongDriver::fleet(n)
            .into_iter()
            .map(|d| Box::new(d) as Box<dyn BsbDriver>)
            .collect(),
    }
}

fn main() {
    let n = 4;
    let t = 1;
    let l = 2048; // bytes
    let cfg = ConsensusConfig::new(n, t, l).expect("valid parameters");
    let value: Vec<u8> = (0..l).map(|i| (i * 7 + 3) as u8).collect();

    println!("one consensus, three Broadcast_Single_Bit substrates");
    println!(
        "n = {n}, t = {t}, L = {} bits, D = {} bytes, {} generations,",
        l * 8,
        cfg.resolved_gen_bytes(),
        cfg.generations()
    );
    println!("Byzantine processor 0 corrupts its symbol toward processor 3\n");

    println!(
        "{:<14} {:>12} {:>8} {:>10} {:>12} decision",
        "substrate", "total bits", "rounds", "diagnoses", "tolerates",
    );

    let mut decisions: Vec<Vec<u8>> = Vec::new();
    for name in ["phase-king", "eig", "dolev-strong"] {
        let mut hooks: Vec<Box<dyn ProtocolHooks>> =
            (0..n).map(|_| NoopHooks::boxed()).collect();
        hooks[0] = Box::new(CorruptSymbolTo::new(vec![3]));

        let metrics = MetricsSink::new();
        let run = simulate_consensus_with(
            &cfg,
            vec![value.clone(); n],
            hooks,
            fleet(name, n),
            metrics.clone(),
        );

        // Safety first: honest processors must decide the common input.
        for honest in 1..n {
            assert_eq!(run.outputs[honest], value, "{name}: node {honest} wrong");
        }
        decisions.push(run.outputs[1].clone());

        let snap = metrics.snapshot();
        let max_t = match name {
            "dolev-strong" => format!("t<n ({})", n - 1),
            _ => format!("t<n/3 ({})", (n - 1) / 3),
        };
        println!(
            "{:<14} {:>12} {:>8} {:>10} {:>12} valid ✓",
            name,
            snap.total_logical_bits(),
            snap.rounds(),
            run.reports[1].diagnosis_invocations,
            max_t,
        );
    }

    assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    println!("\nall substrates decided the identical value — the substitution is");
    println!("behaviour-preserving (§4); only the B-priced control traffic and the");
    println!("round count change. Phase-King and EIG are error-free for t < n/3;");
    println!("Dolev-Strong additionally covers t >= n/3 at the broadcast layer under");
    println!("the idealised-signature assumption (see DESIGN.md §2 for the Lemma 5");
    println!("caveat on end-to-end resilience).");
}
