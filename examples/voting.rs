//! Electronic voting: authorities agree on the set of ballots to tally.
//!
//! The paper (after Fitzi-Hirt) motivates multi-valued consensus with
//! voting: "the authorities must agree on the set of all ballots to be
//! tallied (which can be gigabytes of data)". This example runs two
//! elections:
//!
//! 1. all authorities collected the same ballot batch — consensus
//!    delivers it verbatim (Validity);
//! 2. one authority's batch differs (a dropped ballot) — the matching
//!    stage proves the inputs differ and all authorities consistently
//!    fall back to the default decision ("re-collect"), rather than
//!    tallying diverging sets.
//!
//! ```sh
//! cargo run -p mvbc-systests --example voting
//! ```

use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks};
use mvbc_metrics::MetricsSink;

/// A toy fixed-width ballot: voter id + choice.
fn ballot(voter: u16, choice: u8) -> [u8; 3] {
    let v = voter.to_be_bytes();
    [v[0], v[1], choice]
}

fn ballot_batch(count: u16, skip: Option<u16>) -> Vec<u8> {
    let mut out = Vec::new();
    for voter in 0..count {
        if Some(voter) == skip {
            // A dropped ballot is encoded as an empty slot, keeping the
            // batch length fixed (consensus inputs must be equal-length).
            out.extend_from_slice(&[0xFF, 0xFF, 0xFF]);
        } else {
            out.extend_from_slice(&ballot(voter, (voter % 3) as u8));
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let t = 1;
    let batch = ballot_batch(300, None);
    let cfg = ConsensusConfig::new(n, t, batch.len())?;
    println!("election 1: {} authorities, {} ballots, {} bytes per batch", n, 300, batch.len());

    let hooks = (0..n).map(|_| NoopHooks::boxed()).collect();
    let run = simulate_consensus(&cfg, vec![batch.clone(); n], hooks, MetricsSink::new());
    assert!(run.outputs.iter().all(|o| *o == batch));
    println!("  -> all authorities tally the identical ballot set ✓");

    // Election 2: authority 2 lost ballot #57.
    let mut inputs = vec![batch.clone(); n];
    inputs[2] = ballot_batch(300, Some(57));
    let hooks = (0..n).map(|_| NoopHooks::boxed()).collect();
    let run = simulate_consensus(&cfg, inputs, hooks, MetricsSink::new());
    println!("\nelection 2: authority 2 dropped ballot #57");
    // n - t = 3 authorities still share a batch, so consensus can deliver
    // it; what matters is that *all* authorities deliver the same thing.
    let first = &run.outputs[0];
    assert!(run.outputs.iter().all(|o| o == first));
    if *first == batch {
        println!("  -> the 3-authority majority batch was adopted by everyone ✓");
    } else if *first == cfg.default_value() {
        println!("  -> authorities consistently refused to tally (default) ✓");
    }

    // Election 3: every authority collected a different batch (network
    // partition during collection) — line 1(f) fires.
    let inputs: Vec<Vec<u8>> = (0..n)
        .map(|i| ballot_batch(300, Some(i as u16)))
        .collect();
    let hooks = (0..n).map(|_| NoopHooks::boxed()).collect();
    let run = simulate_consensus(&cfg, inputs, hooks, MetricsSink::new());
    println!("\nelection 3: all four batches differ");
    assert!(run.outputs.iter().all(|o| *o == cfg.default_value()));
    assert!(run.reports.iter().all(|r| r.defaulted));
    println!("  -> provably no agreement possible; all authorities decide the default ✓");
    Ok(())
}
