//! The adversary matrix: every attack strategy at every position, plus
//! mixed colluding teams up to the full `t` budget at `n = 13` — the
//! broadest safety sweep in the suite. Every cell must preserve
//! Consistency + Validity for fault-free processors, keep the diagnosis
//! count within Theorem 1's bound, and never isolate a fault-free
//! processor.

use mvbc_adversary::{
    BsbEquivocator, CorruptDiagnosisSymbol, CorruptSymbolTo, CrashAt, Deadline,
    EquivocateSymbol, FalseDetect, KingLiar, LieMVector, LieTrust, RandomAdversary,
    ShiftedInput, Silent, Sleeper, WorstCaseDiagnosis,
};
use mvbc_bsb::{BsbDriver, EigDriver};
use mvbc_core::{simulate_consensus, simulate_consensus_with, ConsensusConfig, ProtocolHooks};
use mvbc_metrics::MetricsSink;
use mvbc_systests::{honest_hooks, test_value};

/// All single-node strategies, constructed fresh per use.
fn strategy(name: &str, n: usize) -> Box<dyn ProtocolHooks> {
    match name {
        "silent" => Box::new(Silent),
        "crash_mid" => Box::new(CrashAt::new(2)),
        "corrupt_low" => Box::new(CorruptSymbolTo::new(vec![0])),
        "corrupt_high" => Box::new(CorruptSymbolTo::new(vec![n - 1])),
        "equivocate" => Box::new(EquivocateSymbol),
        "lie_m_true" => Box::new(LieMVector { claim: true }),
        "lie_m_false" => Box::new(LieMVector { claim: false }),
        "false_detect" => Box::new(FalseDetect),
        "lie_trust" => Box::new(LieTrust::new(vec![])),
        "corrupt_diag" => Box::new(CorruptDiagnosisSymbol),
        "bsb_equivocate" => Box::new(BsbEquivocator),
        "king_liar" => Box::new(KingLiar),
        "shifted_input" => Box::new(ShiftedInput),
        "random" => Box::new(RandomAdversary::new(0xA11CE, 0.35)),
        "sleeper_corrupt" => Box::new(Sleeper::new(2, CorruptSymbolTo::new(vec![n - 1]))),
        "sleeper_equivocate" => Box::new(Sleeper::new(1, EquivocateSymbol)),
        "deadline_corrupt" => Box::new(Deadline::new(2, CorruptSymbolTo::new(vec![n - 1]))),
        "deadline_random" => Box::new(Deadline::new(3, RandomAdversary::new(0xBEEF, 0.4))),
        other => panic!("unknown strategy {other}"),
    }
}

const ALL_STRATEGIES: &[&str] = &[
    "silent",
    "crash_mid",
    "corrupt_low",
    "corrupt_high",
    "equivocate",
    "lie_m_true",
    "lie_m_false",
    "false_detect",
    "lie_trust",
    "corrupt_diag",
    "bsb_equivocate",
    "king_liar",
    "shifted_input",
    "random",
    "sleeper_corrupt",
    "sleeper_equivocate",
    "deadline_corrupt",
    "deadline_random",
];

fn run_and_check(n: usize, t: usize, l: usize, d: usize, team: &[(usize, &str)]) {
    let cfg = ConsensusConfig::with_gen_bytes(n, t, l, d).unwrap();
    let v = test_value(l, 0xC0FFEE);
    let mut hooks = honest_hooks(n);
    let faulty: Vec<usize> = team.iter().map(|(id, _)| *id).collect();
    assert!(faulty.len() <= t);
    for &(id, name) in team {
        hooks[id] = strategy(name, n);
    }
    let run = simulate_consensus(&cfg, vec![v.clone(); n], hooks, MetricsSink::new());
    for id in 0..n {
        if faulty.contains(&id) {
            continue;
        }
        assert_eq!(run.outputs[id], v, "team {team:?}: node {id} broke validity");
        let r = &run.reports[id];
        assert!(
            r.diagnosis_invocations <= (t * (t + 1)) as u64,
            "team {team:?}: diagnosis bound exceeded"
        );
        for iso in &r.isolated {
            assert!(faulty.contains(iso), "team {team:?}: honest {iso} isolated");
        }
    }
}

#[test]
fn every_strategy_every_position_n4() {
    for name in ALL_STRATEGIES {
        for pos in 0..4 {
            run_and_check(4, 1, 48, 12, &[(pos, name)]);
        }
    }
}

#[test]
fn every_strategy_once_n7() {
    for (i, name) in ALL_STRATEGIES.iter().enumerate() {
        let pos = i % 7;
        run_and_check(7, 2, 48, 16, &[(pos, name)]);
    }
}

#[test]
fn strategy_pairs_n7() {
    // A quadratic-but-subsampled sweep of colluding pairs.
    let pairs = [
        ("corrupt_high", "false_detect"),
        ("equivocate", "lie_m_true"),
        ("silent", "random"),
        ("corrupt_diag", "lie_trust"),
        ("bsb_equivocate", "king_liar"),
        ("lie_m_false", "corrupt_low"),
        ("random", "random"),
    ];
    for (i, (a, b)) in pairs.into_iter().enumerate() {
        let p1 = i % 7;
        let p2 = (i + 3) % 7;
        if p1 == p2 {
            continue;
        }
        run_and_check(7, 2, 48, 16, &[(p1, a), (p2, b)]);
    }
}

#[test]
fn every_strategy_under_eig_substrate_n4() {
    // The adversary matrix re-run under the EIG Broadcast_Single_Bit
    // substrate: safety must be substrate-independent.
    let (n, t, l, d) = (4usize, 1usize, 48usize, 12usize);
    let cfg = ConsensusConfig::with_gen_bytes(n, t, l, d).unwrap();
    for name in ALL_STRATEGIES {
        let v = test_value(l, 0xE16);
        let mut hooks = honest_hooks(n);
        let pos = 1;
        hooks[pos] = strategy(name, n);
        let drivers: Vec<Box<dyn BsbDriver>> =
            (0..n).map(|_| Box::new(EigDriver) as Box<dyn BsbDriver>).collect();
        let run = simulate_consensus_with(&cfg, vec![v.clone(); n], hooks, drivers, MetricsSink::new());
        for id in 0..n {
            if id == pos {
                continue;
            }
            assert_eq!(run.outputs[id], v, "{name} under EIG: node {id} broke validity");
            assert!(run.reports[id].diagnosis_invocations <= (t * (t + 1)) as u64);
            assert!(run.reports[id].isolated.iter().all(|&i| i == pos));
        }
    }
}

#[test]
fn full_team_n13_t4_mixed() {
    // The largest configuration: 13 processors, a full team of 4 mixed
    // Byzantine strategies.
    run_and_check(
        13,
        4,
        64,
        16,
        &[
            (2, "corrupt_high"),
            (5, "false_detect"),
            (8, "bsb_equivocate"),
            (12, "random"),
        ],
    );
}

#[test]
fn full_team_n13_t4_worst_case_plus_noise() {
    let n = 13;
    let t = 4;
    let cfg = ConsensusConfig::with_gen_bytes(n, t, 128, 8).unwrap();
    let v = test_value(128, 0xDEAD);
    let mut hooks = honest_hooks(n);
    let team: Vec<usize> = vec![0, 1, 2, 3];
    for &f in &team {
        hooks[f] = Box::new(WorstCaseDiagnosis::new(team.clone()));
    }
    let run = simulate_consensus(&cfg, vec![v.clone(); n], hooks, MetricsSink::new());
    for id in 4..n {
        assert_eq!(run.outputs[id], v);
        assert!(run.reports[id].diagnosis_invocations <= (t * (t + 1)) as u64);
    }
}

#[test]
fn strategies_against_differing_honest_inputs() {
    // Attacks while honest inputs already differ: the decision must be
    // common and non-forged (an honest input or the default).
    let n = 4;
    let t = 1;
    let cfg = ConsensusConfig::with_gen_bytes(n, t, 32, 8).unwrap();
    for name in ["corrupt_high", "false_detect", "random", "lie_m_true"] {
        let mut inputs: Vec<Vec<u8>> = (0..n).map(|i| test_value(32, i as u64 % 2)).collect();
        inputs[3] = test_value(32, 9);
        let mut hooks = honest_hooks(n);
        hooks[3] = strategy(name, n);
        let run = simulate_consensus(&cfg, inputs.clone(), hooks, MetricsSink::new());
        for w in [0usize, 1, 2].windows(2) {
            assert_eq!(run.outputs[w[0]], run.outputs[w[1]], "{name}: inconsistent");
        }
        let decided = &run.outputs[0];
        assert!(
            *decided == inputs[0] || *decided == inputs[1] || *decided == cfg.default_value(),
            "{name}: forged decision"
        );
    }
}
