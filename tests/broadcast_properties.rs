//! Property-based tests of the broadcast extension: consistency always,
//! validity for a fault-free source, bounded dispute budget.

use mvbc_broadcast::attacks::{EquivocatingSource, FalseDetector, LyingEcho, SilentSource};
use mvbc_broadcast::{
    simulate_broadcast, BroadcastConfig, BroadcastHooks, NoopBroadcastHooks,
};
use mvbc_metrics::MetricsSink;
use mvbc_systests::test_value;
use proptest::prelude::*;

fn honest(n: usize) -> Vec<Box<dyn BroadcastHooks>> {
    (0..n).map(|_| NoopBroadcastHooks::boxed()).collect()
}

fn check_broadcast(
    n: usize,
    t: usize,
    source: usize,
    value: Vec<u8>,
    gen_bytes: usize,
    hooks: Vec<Box<dyn BroadcastHooks>>,
    faulty: Vec<usize>,
) -> Result<(), TestCaseError> {
    let cfg = BroadcastConfig::with_gen_bytes(n, t, source, value.len(), gen_bytes).unwrap();
    let run = simulate_broadcast(&cfg, value.clone(), hooks, MetricsSink::new());
    let honest_ids: Vec<usize> = (0..n).filter(|i| !faulty.contains(i)).collect();
    // Consistency among all fault-free processors.
    for w in honest_ids.windows(2) {
        prop_assert_eq!(&run.outputs[w[0]], &run.outputs[w[1]]);
    }
    // Validity when the source is fault-free.
    if !faulty.contains(&source) {
        prop_assert_eq!(&run.outputs[honest_ids[0]], &value);
    }
    // Dispute budget (crate docs: t(t+2)).
    for &h in &honest_ids {
        prop_assert!(run.reports[h].diagnosis_invocations <= (t * (t + 2)) as u64);
        for iso in &run.reports[h].isolated {
            prop_assert!(faulty.contains(iso), "fault-free processor isolated");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    #[test]
    fn honest_source_any_value(
        seed in any::<u64>(),
        l in 1usize..150,
        gen in 1usize..48,
        source in 0usize..4,
    ) {
        let v = test_value(l, seed);
        check_broadcast(4, 1, source, v, gen, honest(4), vec![])?;
    }

    #[test]
    fn lying_echo_any_position(
        echo in 1usize..7,
        target in 0usize..7,
        seed in any::<u64>(),
    ) {
        prop_assume!(echo != target);
        let v = test_value(64, seed);
        let mut hooks = honest(7);
        hooks[echo] = Box::new(LyingEcho::new(vec![target]));
        check_broadcast(7, 2, 0, v, 16, hooks, vec![echo])?;
    }

    #[test]
    fn equivocating_source_consistent(
        seed in any::<u64>(),
        l in 8usize..100,
    ) {
        let v = test_value(l, seed);
        let mut hooks = honest(4);
        hooks[0] = Box::new(EquivocatingSource);
        check_broadcast(4, 1, 0, v, 16, hooks, vec![0])?;
    }
}

#[test]
fn silent_source_all_positions() {
    for source in 0..4 {
        let v = test_value(32, source as u64);
        let mut hooks = honest(4);
        hooks[source] = Box::new(SilentSource);
        check_broadcast(4, 1, source, v, 8, hooks, vec![source]).unwrap();
    }
}

#[test]
fn colluding_echo_and_detector() {
    let v = test_value(96, 5);
    let mut hooks = honest(7);
    hooks[3] = Box::new(LyingEcho::new(vec![1, 2]));
    hooks[6] = Box::new(FalseDetector);
    check_broadcast(7, 2, 0, v, 24, hooks, vec![3, 6]).unwrap();
}

#[test]
fn broadcast_beats_measured_unicast_plus_consensus() {
    // Structural claim of §4: the dispersal broadcast costs ≈ 2(n-1)L,
    // beating the classic reduction "source unicasts the value to all,
    // then everyone runs multi-valued consensus on what they received"
    // — measured like-for-like at the same L.
    let (n, t, l) = (7usize, 2usize, 16 * 1024usize);
    let cfg = BroadcastConfig::new(n, t, 0, l).unwrap();
    let metrics = MetricsSink::new();
    let v = test_value(l, 1);
    let run = simulate_broadcast(&cfg, v.clone(), honest(n), metrics.clone());
    assert!(run.outputs.iter().all(|o| *o == v));
    let measured = metrics.snapshot().total_logical_bits() as f64;

    // The naive reduction, measured: (n-1)·L unicast plus a full
    // consensus execution on the L-byte value.
    let ccfg = mvbc_core::ConsensusConfig::new(n, t, l).unwrap();
    let cmetrics = MetricsSink::new();
    let crun = mvbc_core::simulate_consensus(
        &ccfg,
        vec![v.clone(); n],
        mvbc_systests::honest_hooks(n),
        cmetrics.clone(),
    );
    assert!(crun.outputs.iter().all(|o| *o == v));
    let naive =
        ((n - 1) * l * 8) as f64 + cmetrics.snapshot().total_logical_bits() as f64;
    assert!(
        measured < naive,
        "dispersal broadcast ({measured}) should beat unicast+consensus ({naive})"
    );
}
