//! Adversary-campaign harness: scenario JSON round-trips, replay
//! determinism, a generated gauntlet, and the known-bad fixture the
//! invariant checker must catch.
//!
//! The campaign treats the whole adversarial environment as data (a
//! `Scenario` document): these tests pin the properties the nightly CI
//! gauntlet relies on — a scenario replays byte-exactly from its JSON,
//! a replay reproduces the identical committed log and message trace,
//! every model-preserving draw upholds the paper's guarantees, and a
//! scenario that deliberately steps outside the model (a drop
//! partition) is caught and reproduces the identical violation from its
//! emitted artifact.

use mvbc_adversary::campaign::{
    run_scenario, Behavior, CampaignReport, CampaignRunner, Corruption, LinkPlan, NetPlan,
    PartitionPlan, Scenario, ScenarioGenerator,
};

/// The known-bad fixture: fault-free replicas cut apart by a *drop*
/// partition (messages lost, not delayed), which violates the
/// synchronous model the protocol assumes.
fn known_bad_fixture() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/known_bad_drop_partition.json"
    );
    std::fs::read_to_string(path).expect("fixture exists")
}

#[test]
fn scenario_json_round_trip_is_identity() {
    // Hand-built scenario exercising every field, including a seed above
    // 2^53 (the string-encoded form) and all three link models.
    for link in [
        LinkPlan::Fixed(3),
        LinkPlan::Jitter { base: 2, jitter: 5 },
        LinkPlan::Wan { intra: 1, inter: 12, jitter: 2 },
    ] {
        let scenario = Scenario {
            name: "round-trip".to_owned(),
            seed: u64::MAX - 17,
            n: 7,
            t: 2,
            slots: 9,
            batch: 2,
            pipeline: 2,
            max_vtime: Some(1_000_000),
            net: Some(NetPlan {
                link,
                clusters: vec![4, 3],
                partitions: vec![PartitionPlan {
                    start: 10,
                    heal: 60,
                    island: vec![5],
                    drop: false,
                }],
                net_seed: u64::MAX - 41,
            }),
            corruptions: vec![
                Corruption {
                    replica: 1,
                    from_slot: 2,
                    until_slot: Some(6),
                    behavior: Behavior::LyingEcho { step: 3 },
                },
                Corruption {
                    replica: 4,
                    from_slot: 0,
                    until_slot: None,
                    behavior: Behavior::Frame { slots: vec![1, 7] },
                },
            ],
        };
        let text = scenario.to_json();
        let parsed = Scenario::from_json(&text).expect("rendered scenario parses");
        assert_eq!(parsed, scenario, "parse(render(s)) == s");
        assert_eq!(parsed.to_json(), text, "render(parse(render(s))) is byte-identical");
    }
}

#[test]
fn generated_scenarios_round_trip() {
    let mut generator = ScenarioGenerator::new(0xC0FFEE);
    for _ in 0..40 {
        let scenario = generator.next_scenario();
        let text = scenario.to_json();
        let parsed = Scenario::from_json(&text).expect("generated scenario parses");
        assert_eq!(parsed, scenario);
        assert_eq!(parsed.to_json(), text);
    }
}

#[test]
fn replay_is_deterministic_in_log_and_trace() {
    // A scenario with every moving part switched on: event-driven WAN,
    // an eclipse partition, pipelining, and a mid-run corruption.
    let scenario = Scenario {
        name: "replay-pin".to_owned(),
        seed: 99,
        n: 7,
        t: 2,
        slots: 8,
        batch: 2,
        pipeline: 2,
        max_vtime: None,
        net: Some(NetPlan {
            link: LinkPlan::Wan { intra: 2, inter: 9, jitter: 3 },
            clusters: vec![4, 3],
            partitions: vec![PartitionPlan { start: 20, heal: 120, island: vec![6], drop: false }],
            net_seed: 5,
        }),
        corruptions: vec![Corruption {
            replica: 2,
            from_slot: 3,
            until_slot: None,
            behavior: Behavior::Equivocate,
        }],
    };
    let first = run_scenario(&scenario).expect("scenario runs");
    let second = run_scenario(&scenario).expect("scenario runs again");
    assert_eq!(first.log_digest, second.log_digest, "identical committed log");
    assert_eq!(first.trace_digest, second.trace_digest, "identical message trace");
    assert_eq!(first, second, "identical outcome in full");
    assert!(first.violations.is_empty(), "{:?}", first.violations);

    // The round-trip through JSON replays the same execution.
    let reparsed = Scenario::from_json(&scenario.to_json()).unwrap();
    let replayed = run_scenario(&reparsed).expect("reparsed scenario runs");
    assert_eq!(replayed, first, "replay from JSON reproduces the run exactly");
}

#[test]
fn generated_campaign_upholds_every_invariant() {
    let mut runner = CampaignRunner::new(2026);
    let mut report = CampaignReport::new();
    for _ in 0..12 {
        let run = runner.next_run();
        assert!(
            run.outcome.violations.is_empty(),
            "scenario {} violated invariants: {:?}\nreplay JSON:\n{}",
            run.scenario.name,
            run.outcome.violations,
            run.scenario.to_json(),
        );
        report.absorb(&run);
    }
    assert_eq!(report.scenarios, 12);
    assert!(report.failed.is_empty());
    assert!(report.total_commands > 0);
}

#[test]
fn known_bad_scenario_is_caught_and_replays_identically() {
    let scenario = Scenario::from_json(&known_bad_fixture()).expect("fixture parses");
    assert!(
        !scenario.is_model_preserving(),
        "the fixture must step outside the error-free model"
    );

    let outcome = run_scenario(&scenario).expect("fixture runs");
    assert!(!outcome.violations.is_empty(), "the checker must catch the drop partition");
    let checks: Vec<&str> = outcome.violations.iter().map(|v| v.check).collect();
    assert!(checks.contains(&"agreement"), "drop cut diverges the logs: {checks:?}");
    assert!(
        checks.contains(&"honest-isolated"),
        "the eclipsed fault-free replica looks Byzantine-silent and is isolated: {checks:?}"
    );

    // Replaying the emitted artifact (render → parse → run) reproduces
    // the identical violation set and digests — the property the
    // nightly gauntlet's failure artifacts depend on.
    let emitted = scenario.to_json();
    let replayed = run_scenario(&Scenario::from_json(&emitted).unwrap()).unwrap();
    assert_eq!(replayed, outcome, "artifact replay reproduces the violation exactly");
}

#[test]
fn campaign_checker_flags_a_deliberately_broken_tweak() {
    // Take a healthy generated scenario and break it by hand: over-cap
    // corruption (more than t corrupted replicas) is flagged as
    // non-model-preserving, and a drop partition on a healthy net plan
    // flips is_model_preserving the same way.
    let mut generator = ScenarioGenerator::new(31);
    let healthy = generator.next_scenario();
    assert!(healthy.is_model_preserving());

    let mut over_cap = healthy.clone();
    for r in 0..healthy.n {
        over_cap.corruptions.push(Corruption {
            replica: r,
            from_slot: 0,
            until_slot: None,
            behavior: Behavior::SilentEcho,
        });
    }
    assert!(!over_cap.is_model_preserving(), "> t corruptions leaves the model");

    let mut dropped = healthy.clone();
    dropped.net = Some(NetPlan {
        link: LinkPlan::Fixed(2),
        clusters: Vec::new(),
        partitions: vec![PartitionPlan { start: 1, heal: 50_000, island: vec![0], drop: true }],
        net_seed: 3,
    });
    assert!(!dropped.is_model_preserving(), "drop partitions leave the model");
}
