//! Equivalence suite: the batched slice-kernel codec paths must be
//! *byte-identical* to the scalar reference implementations
//! ([`mvbc_rscode::reference`]) — encode, decode, consistency, and
//! striped round-trips, across all three fields and random geometries —
//! and the codec rewrite must not have changed protocol behavior (pinned
//! by a seeded pipelined SMR digest captured before the rewrite).

use mvbc_gf::{kernels, Field, Gf16, Gf256, Gf65536};
use mvbc_metrics::MetricsSink;
use mvbc_rscode::{reference, CodeError, ReedSolomon, StripedCode, Symbol};
use mvbc_smr::{simulate_smr, synthetic_workloads, HonestReplica, SmrConfig, SmrHooks};
use proptest::prelude::*;

/// Deterministic field elements from a seed.
fn elems<F: Field>(len: usize, seed: u64) -> Vec<F> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            F::from_u64(state)
        })
        .collect()
}

/// Kernels == scalar loops for one field, over a generated slice.
fn check_kernels<F: Field>(len: usize, c_raw: u64, seed: u64) {
    let c = F::from_u64(c_raw);
    let src = elems::<F>(len, seed);
    let acc = elems::<F>(len, seed ^ 0xabcd);

    let mut fast = vec![F::ZERO; len];
    let mut slow = vec![F::ZERO; len];
    kernels::mul_slice(c, &src, &mut fast);
    kernels::mul_slice_scalar(c, &src, &mut slow);
    assert_eq!(fast, slow);

    let mut fast = acc.clone();
    let mut slow = acc;
    kernels::addmul_slice(c, &src, &mut fast);
    kernels::addmul_slice_scalar(c, &src, &mut slow);
    assert_eq!(fast, slow);

    let mut in_place = src.clone();
    kernels::mul_slice_in_place(c, &mut in_place);
    let expect: Vec<F> = src.iter().map(|&s| c * s).collect();
    assert_eq!(in_place, expect);
}

/// Batched ReedSolomon == scalar reference for one field: encode, every
/// decode subset shape, consistency on clean and tampered codewords.
fn check_rs_equivalence<F: Field>(n: usize, k: usize, seed: u64, tamper: Option<(usize, u64)>) {
    let rs: ReedSolomon<F> = ReedSolomon::new(n, k).unwrap();
    let data = elems::<F>(k, seed);

    let batched = rs.encode(&data).unwrap();
    let scalar = reference::rs_encode(&rs, &data).unwrap();
    assert_eq!(batched, scalar, "encode must be identical");

    let mut pairs: Vec<(usize, F)> = batched.iter().copied().enumerate().collect();
    if let Some((victim, delta)) = tamper {
        pairs[victim % n].1 += F::from_u64(delta);
    }

    // Full-codeword consistency and decode agree with the reference,
    // including the error.
    assert_eq!(
        rs.is_consistent(&pairs).unwrap(),
        reference::rs_is_consistent(&rs, &pairs).unwrap()
    );
    assert_eq!(rs.decode(&pairs), reference::rs_decode(&rs, &pairs));

    // A k-subset (rotated so parity positions lead) decodes identically.
    let rot = seed as usize % n;
    let subset: Vec<(usize, F)> = (0..k).map(|i| pairs[(i + rot) % n]).collect();
    assert_eq!(rs.decode(&subset), reference::rs_decode(&rs, &subset));
    // extend() agrees with re-encoding the decoded data.
    if let Ok(decoded) = rs.decode(&subset) {
        assert_eq!(rs.extend(&subset).unwrap(), rs.encode(&decoded).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    #[test]
    fn kernels_equal_scalar_all_fields(
        len in 0usize..200,
        c in any::<u64>(),
        seed in any::<u64>(),
    ) {
        check_kernels::<Gf16>(len, c, seed);
        check_kernels::<Gf256>(len, c, seed);
        check_kernels::<Gf65536>(len, c, seed);
    }

    #[test]
    fn reed_solomon_equals_reference_all_fields(
        n in 4usize..=15,
        k_off in 0usize..15,
        seed in any::<u64>(),
        tamper_victim in 0usize..15,
        tamper_delta in 0u64..,
    ) {
        let k = 1 + k_off % n;
        // Alternate clean / tampered codewords so both branches of
        // is_consistent and decode are exercised.
        let tamper = (tamper_delta % 3 != 0).then(|| (tamper_victim, 1 + tamper_delta % 0xf));
        check_rs_equivalence::<Gf16>(n, k, seed, tamper);
        check_rs_equivalence::<Gf256>(n, k, seed, tamper);
        check_rs_equivalence::<Gf65536>(n, k, seed, tamper);
    }

    #[test]
    fn striped_equals_reference(
        len in 1usize..600,
        seed in any::<u64>(),
        n_t in prop::sample::select(vec![(4usize, 1usize), (5, 1), (7, 2), (10, 3), (16, 5)]),
        rot in any::<u8>(),
        tamper in any::<u64>(),
    ) {
        let (n, t) = n_t;
        let k = n - 2 * t;
        let code = StripedCode::c2t(n, t, len).unwrap();
        let value = mvbc_systests::test_value(len, seed);

        let batched = code.encode_value(&value).unwrap();
        let scalar = reference::encode_value(&code, &value).unwrap();
        prop_assert_eq!(&batched, &scalar, "striped codewords must be byte-identical");

        let mut pairs: Vec<(usize, Symbol)> = batched.iter().cloned().enumerate().collect();
        pairs.rotate_left(rot as usize % n);
        if tamper % 2 == 1 {
            // Corrupt one stripe element of one symbol.
            let victim = (tamper as usize / 2) % n;
            let mut elems = pairs[victim].1.elems().to_vec();
            elems[0] += Gf65536::new(1 + ((tamper >> 8) as u16 & 0xff));
            let bits = pairs[victim].1.logical_bits();
            pairs[victim].1 = Symbol::new(elems, bits);
        }

        prop_assert_eq!(
            code.is_consistent(&pairs).unwrap(),
            reference::is_consistent_value(&code, &pairs).unwrap()
        );
        prop_assert_eq!(code.decode_value(&pairs), reference::decode_value(&code, &pairs));

        // Round-trip from every clean k-subset offset.
        let clean: Vec<(usize, Symbol)> = batched.iter().cloned().enumerate().collect();
        for start in 0..n {
            let picks: Vec<(usize, Symbol)> =
                (0..k).map(|i| clean[(start + i) % n].clone()).collect();
            prop_assert_eq!(code.decode_value(&picks).unwrap(), value.clone());
            prop_assert_eq!(code.extend_symbols(&picks).unwrap(), batched.clone());
        }
    }
}

/// Fused row kernels == scalar row loops for all three fields, across
/// lengths that straddle every dispatch threshold of the packed kernels
/// (log-domain below 32, split tables above, byte tables above 1024),
/// including odd lengths and unaligned tails around the block size.
#[test]
fn fused_row_kernels_equal_scalar_all_fields() {
    fn check<F: Field>() {
        for &len in &[0usize, 1, 31, 33, 257, 1023, 1025, 4097] {
            for k in [1usize, 2, 3, 5, 8] {
                let srcs: Vec<Vec<F>> = (0..k).map(|j| elems::<F>(len, 77 ^ j as u64)).collect();
                let src_refs: Vec<&[F]> = srcs.iter().map(Vec::as_slice).collect();
                let coeffs = elems::<F>(k, 0x51);
                let mut fast = elems::<F>(len, 0x99);
                let mut slow = fast.clone();
                kernels::addmul_rows(&coeffs, &src_refs, &mut fast);
                kernels::addmul_rows_scalar(&coeffs, &src_refs, &mut slow);
                assert_eq!(fast, slow, "len {len}, k {k}");
            }
        }
    }
    check::<Gf16>();
    check::<Gf256>();
    check::<Gf65536>();
}

/// The codec worker count is a pure wall-clock knob: encode, decode,
/// extend and consistency produce byte-identical results at 1, 2 and 8
/// workers, on a value large enough that the stripe bands actually
/// shard (the lint rule `determinism.thread_count` audits this
/// invariant statically; this test pins it dynamically).
#[test]
fn codec_worker_count_never_changes_bytes() {
    let len = 400_000; // ~66k stripes at k = 3: enough to shard 8 ways
    let value = mvbc_systests::test_value(len, 13);
    let serial = StripedCode::c2t(7, 2, len).unwrap().with_threads(1);
    let symbols = serial.encode_value(&value).unwrap();
    let picks: Vec<(usize, Symbol)> = symbols.iter().cloned().enumerate().skip(4).collect();
    let all: Vec<(usize, Symbol)> = symbols.iter().cloned().enumerate().collect();
    assert_eq!(serial.decode_value(&picks).unwrap(), value);
    for workers in [2usize, 8] {
        let code = StripedCode::c2t(7, 2, len).unwrap().with_threads(workers);
        assert_eq!(code.encode_value(&value).unwrap(), symbols, "{workers} workers");
        assert_eq!(code.decode_value(&picks).unwrap(), value, "{workers} workers");
        assert_eq!(code.extend_symbols(&picks).unwrap(), symbols, "{workers} workers");
        assert!(code.is_consistent(&all).unwrap(), "{workers} workers");
    }
}

#[test]
fn decode_error_taxonomy_matches_reference() {
    let code = StripedCode::c2t(7, 2, 40).unwrap();
    let value = mvbc_systests::test_value(40, 3);
    let symbols = code.encode_value(&value).unwrap();

    // Too few symbols.
    let two: Vec<_> = symbols.iter().cloned().enumerate().take(2).collect();
    assert_eq!(
        code.decode_value(&two),
        Err(CodeError::NotEnoughSymbols { needed: 3, got: 2 })
    );
    assert_eq!(code.decode_value(&two), reference::decode_value(&code, &two));
    // ...but vacuously consistent.
    assert!(code.is_consistent(&two).unwrap());

    // Duplicate / out-of-range positions.
    let dup = vec![
        (1usize, symbols[1].clone()),
        (1, symbols[1].clone()),
        (2, symbols[2].clone()),
    ];
    assert_eq!(code.decode_value(&dup), reference::decode_value(&code, &dup));
    let oob = vec![(9usize, symbols[0].clone())];
    assert_eq!(code.decode_value(&oob), reference::decode_value(&code, &oob));

    // Malformed stripe count.
    let malformed = vec![
        (0usize, Symbol::new(vec![Gf65536::ZERO], 16)),
        (1, symbols[1].clone()),
        (2, symbols[2].clone()),
    ];
    assert_eq!(
        code.decode_value(&malformed),
        reference::decode_value(&code, &malformed)
    );
}

/// Digest of a seeded pipelined SMR run, captured on the scalar codec
/// *before* the batch-kernel rewrite. The rewrite must not perturb any
/// protocol byte: same digest, same commands, same round counts, at
/// every pipeline depth.
#[test]
fn pinned_smr_digest_unchanged_by_codec_rewrite() {
    const GOLDEN_DIGEST: u64 = 0xde7b_9e4c_7a0d_c6b3;
    const GOLDEN_COMMANDS: u64 = 48;
    const GOLDEN_ROUNDS_SEQ: u64 = 864;

    for (depth, rounds) in [(1usize, GOLDEN_ROUNDS_SEQ), (2, GOLDEN_ROUNDS_SEQ / 2)] {
        let (n, t, slots, batch, seed) = (7usize, 2usize, 12usize, 4usize, 29u64);
        let cfg = SmrConfig::new(n, t, slots, batch).unwrap().with_pipeline(depth);
        let workloads = synthetic_workloads(n, slots.div_ceil(n) * batch, seed);
        let hooks: Vec<Box<dyn SmrHooks>> = (0..n).map(|_| HonestReplica::boxed()).collect();
        let run = simulate_smr(&cfg, workloads, hooks, MetricsSink::new());
        assert_eq!(
            run.reports[0].digest, GOLDEN_DIGEST,
            "depth {depth}: codec change perturbed the replicated-log digest"
        );
        assert_eq!(run.reports[0].committed_commands, GOLDEN_COMMANDS, "depth {depth}");
        assert_eq!(run.rounds, rounds, "depth {depth}");
    }
}
