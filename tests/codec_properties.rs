//! Property-based tests of the coding substrate: GF arithmetic axioms,
//! Reed-Solomon identities, the paper's `C_2t` detection guarantees, and
//! Berlekamp-Welch correction.

use mvbc_gf::{interpolate, Field, Gf256, Gf65536, Poly};
use mvbc_rscode::{berlekamp_welch, CodeError, ReedSolomon, StripedCode, Symbol};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn gf65536_field_axioms(a in any::<u16>(), b in any::<u16>(), c in any::<u16>()) {
        let (a, b, c) = (Gf65536::new(a), Gf65536::new(b), Gf65536::new(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + a, Gf65536::ZERO);
        if !a.is_zero() {
            prop_assert_eq!(a * a.inv().unwrap(), Gf65536::ONE);
        }
    }

    #[test]
    fn gf256_division_inverts_multiplication(a in any::<u8>(), b in 1u8..) {
        let (a, b) = (Gf256::new(a), Gf256::new(b));
        prop_assert_eq!((a * b) / b, a);
    }

    #[test]
    fn poly_eval_agrees_with_interpolation(
        coeffs in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let p = Poly::from_coeffs(coeffs.iter().map(|&c| Gf256::new(c)).collect());
        let pts: Vec<_> = (0..8).map(|i| {
            let x = Gf256::alpha(i);
            (x, p.eval(x))
        }).collect();
        let q = interpolate(&pts).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn poly_div_rem_identity(
        a in prop::collection::vec(any::<u8>(), 0..10),
        d in prop::collection::vec(any::<u8>(), 1..6),
    ) {
        let a = Poly::from_coeffs(a.into_iter().map(Gf256::new).collect());
        let d = Poly::from_coeffs(d.into_iter().map(Gf256::new).collect());
        prop_assume!(!d.is_zero());
        let (q, r) = a.div_rem(&d);
        prop_assert_eq!(q.mul(&d).add(&r), a);
        prop_assert!(r.degree() < d.degree() || r.is_zero());
    }

    #[test]
    fn rs_roundtrip_any_k_subset(
        data in prop::collection::vec(any::<u8>(), 3),
        mask in any::<u8>(),
    ) {
        let rs: ReedSolomon<Gf256> = ReedSolomon::new(7, 3).unwrap();
        let d: Vec<Gf256> = data.iter().map(|&x| Gf256::new(x)).collect();
        let cw = rs.encode(&d).unwrap();
        // Select at least k positions from the mask bits.
        let mut picks: Vec<(usize, Gf256)> = (0..7)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| (i, cw[i]))
            .collect();
        for (i, &c) in cw.iter().enumerate() {
            if picks.len() >= 3 { break; }
            if !picks.iter().any(|&(p, _)| p == i) {
                picks.push((i, c));
            }
        }
        prop_assert_eq!(rs.decode(&picks).unwrap(), d);
    }

    #[test]
    fn c2t_detects_any_single_tampering(
        data in prop::collection::vec(any::<u8>(), 3),
        victim in 0usize..7,
        delta in 1u8..,
    ) {
        // Distance 2t+1 = 5 > 1, so any single-symbol change is caught.
        let rs: ReedSolomon<Gf256> = ReedSolomon::new(7, 3).unwrap();
        let d: Vec<Gf256> = data.iter().map(|&x| Gf256::new(x)).collect();
        let mut cw = rs.encode(&d).unwrap();
        cw[victim] += Gf256::new(delta);
        let pairs: Vec<_> = cw.into_iter().enumerate().collect();
        prop_assert!(!rs.is_consistent(&pairs).unwrap());
    }

    #[test]
    fn c2t_detects_up_to_2t_tamperings(
        data in prop::collection::vec(any::<u8>(), 3),
        victims in prop::collection::btree_set(0usize..7, 1..=4),
        delta in 1u8..,
    ) {
        // Up to 2t = 4 changed symbols cannot reach another codeword
        // (distance 2t+1), so the full view is always inconsistent.
        let rs: ReedSolomon<Gf256> = ReedSolomon::new(7, 3).unwrap();
        let d: Vec<Gf256> = data.iter().map(|&x| Gf256::new(x)).collect();
        let mut cw = rs.encode(&d).unwrap();
        for &v in &victims {
            cw[v] += Gf256::new(delta);
        }
        let pairs: Vec<_> = cw.into_iter().enumerate().collect();
        prop_assert!(!rs.is_consistent(&pairs).unwrap());
    }

    #[test]
    fn striped_roundtrip(
        len in 1usize..300,
        seed in any::<u64>(),
        n_t in prop::sample::select(vec![(4usize, 1usize), (7, 2), (10, 3)]),
    ) {
        let (n, t) = n_t;
        let code = StripedCode::c2t(n, t, len).unwrap();
        let v = mvbc_systests::test_value(len, seed);
        let syms = code.encode_value(&v).unwrap();
        let k = n - 2 * t;
        let picks: Vec<(usize, Symbol)> = syms.into_iter().enumerate().skip(n - k).collect();
        prop_assert_eq!(code.decode_value(&picks).unwrap(), v);
    }

    #[test]
    fn berlekamp_welch_corrects_within_radius(
        data in prop::collection::vec(any::<u8>(), 3),
        errors in prop::collection::btree_map(0usize..9, 1u8.., 0..=3),
    ) {
        let rs: ReedSolomon<Gf256> = ReedSolomon::new(9, 3).unwrap(); // e_max = 3
        let d: Vec<Gf256> = data.iter().map(|&x| Gf256::new(x)).collect();
        let mut cw = rs.encode(&d).unwrap();
        for (&pos, &delta) in &errors {
            cw[pos] += Gf256::new(delta);
        }
        let pairs: Vec<_> = cw.into_iter().enumerate().collect();
        let out = berlekamp_welch::decode(&rs, &pairs).unwrap();
        prop_assert_eq!(out.data, d);
        prop_assert_eq!(out.error_positions.len(), errors.len());
    }

    #[test]
    fn symbol_serialisation_roundtrip(
        elems in prop::collection::vec(any::<u16>(), 0..20),
    ) {
        let sym = Symbol::new(elems.iter().map(|&e| Gf65536::new(e)).collect(), elems.len() as u64 * 16);
        let bytes = sym.to_bytes();
        prop_assert_eq!(Symbol::from_bytes(&bytes, elems.len(), elems.len() as u64 * 16), Some(sym));
    }
}

#[test]
fn decode_never_hallucinates_with_honest_quorum() {
    // The load-bearing property behind Lemma 3: if at least k supplied
    // symbols come from one codeword and the rest are arbitrary, decode
    // either errors or returns that codeword's data (it re-checks all
    // symbols), never a third value.
    let rs: ReedSolomon<Gf256> = ReedSolomon::new(7, 3).unwrap();
    let d: Vec<Gf256> = vec![Gf256::new(1), Gf256::new(2), Gf256::new(3)];
    let cw = rs.encode(&d).unwrap();
    for junk in 0u8..50 {
        let mut pairs: Vec<(usize, Gf256)> = cw.iter().copied().enumerate().take(5).collect();
        pairs.push((5, Gf256::new(junk)));
        match rs.decode(&pairs) {
            Ok(got) => assert_eq!(got, d),
            Err(CodeError::Inconsistent) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
