//! Communication-complexity integration tests: the measured bit counts
//! must track the paper's §3.4 analysis (Eq. 1) across parameters.

use mvbc_core::{dsel, simulate_consensus, ConsensusConfig};
use mvbc_metrics::MetricsSink;
use mvbc_systests::{honest_hooks, test_value};

fn measure(n: usize, t: usize, l: usize, gen_bytes: Option<usize>) -> (f64, ConsensusConfig) {
    let cfg = match gen_bytes {
        Some(d) => ConsensusConfig::with_gen_bytes(n, t, l, d).unwrap(),
        None => ConsensusConfig::new(n, t, l).unwrap(),
    };
    let metrics = MetricsSink::new();
    let v = test_value(l, 1);
    let run = simulate_consensus(&cfg, vec![v.clone(); n], honest_hooks(n), metrics.clone());
    assert!(run.outputs.iter().all(|o| *o == v));
    (metrics.snapshot().total_logical_bits() as f64, cfg)
}

#[test]
fn matching_stage_symbol_bits_match_formula_exactly() {
    // The matching stage sends n(n-1)/(n-2t) * D bits of symbols per
    // generation — this term is deterministic and must match exactly.
    let (n, t, l, d) = (7usize, 2usize, 3000usize, 300usize);
    let cfg = ConsensusConfig::with_gen_bytes(n, t, l, d).unwrap();
    let metrics = MetricsSink::new();
    let v = test_value(l, 2);
    let _ = simulate_consensus(&cfg, vec![v; n], honest_hooks(n), metrics.clone());
    let snap = metrics.snapshot();
    let measured = snap.logical_bits_with_prefix("consensus.matching.symbol");
    // Per generation: n senders x (n-1) recipients x chunk_bits.
    let chunk_bits = (d.div_ceil(n - 2 * t) * 8) as u64;
    let expect = (n * (n - 1)) as u64 * chunk_bits * cfg.generations() as u64;
    assert_eq!(measured, expect);
}

#[test]
fn failure_free_within_model_envelope_across_params() {
    for (n, t) in [(4usize, 1usize), (7, 2)] {
        let l = 2048usize;
        let (measured, cfg) = measure(n, t, l, None);
        let b = dsel::model_b_phase_king(n, t);
        let model = dsel::model_ccon_failure_free_bits(
            n,
            t,
            (l * 8) as u64,
            cfg.resolved_gen_bytes() as u64 * 8,
            b,
        );
        let ratio = measured / model;
        assert!(
            (0.5..2.0).contains(&ratio),
            "n={n} t={t}: measured {measured} vs model {model} (ratio {ratio})"
        );
    }
}

#[test]
fn amortized_cost_decreases_toward_linear_coefficient() {
    // Eq. (3): C_con(L)/L approaches n(n-1)/(n-2t) as L grows. With our
    // Θ(n³) BSB the sub-linear term is larger, but the per-bit cost must
    // still *decrease* monotonically in L and head toward the
    // coefficient.
    let (n, t) = (4usize, 1usize);
    let coeff = dsel::linear_coefficient(n, t); // 6.0
    let mut last_ratio = f64::INFINITY;
    for l in [1usize << 10, 1 << 12, 1 << 14, 1 << 16] {
        let (measured, _) = measure(n, t, l, None);
        let per_bit = measured / ((l * 8) as f64);
        assert!(
            per_bit < last_ratio,
            "per-bit cost must shrink with L: {per_bit} at L={l}"
        );
        last_ratio = per_bit;
        assert!(per_bit > coeff, "cannot beat the linear coefficient");
    }
    // By 64 KiB the per-bit cost should be within 4x of the coefficient.
    assert!(
        last_ratio < 4.0 * coeff,
        "per-bit cost {last_ratio} still far from coefficient {coeff}"
    );
}

#[test]
fn eq2_optimum_beats_extreme_d_choices() {
    // E5 in miniature: Eq. (2)'s D* yields lower total cost than a much
    // smaller or much larger D, under a worst-case adversary... here
    // failure-free (the D tradeoff already shows because the per-
    // generation BSB overhead dominates at small D).
    let (n, t, l) = (4usize, 1usize, 1 << 14);
    let (at_opt, cfg) = measure(n, t, l, None);
    let d_star = cfg.resolved_gen_bytes();
    let (small_d, _) = measure(n, t, l, Some((d_star / 16).max(1)));
    assert!(
        at_opt < small_d,
        "D* ({d_star}B, {at_opt} bits) must beat D*/16 ({small_d} bits)"
    );
}

#[test]
fn cost_scales_linearly_in_n_for_fixed_ratio() {
    // E2 in miniature: at fixed L, total bits grow ~n(n-1)/(n-2t) ≈ 3n
    // for the symbol traffic. The BSB terms grow faster, so assert that
    // the *symbol* traffic specifically scales linearly in n.
    let l = 4096usize;
    let mut per_n = Vec::new();
    for (n, t) in [(4usize, 1usize), (7, 2), (10, 3)] {
        let cfg = ConsensusConfig::with_gen_bytes(n, t, l, 512).unwrap();
        let metrics = MetricsSink::new();
        let v = test_value(l, 3);
        let _ = simulate_consensus(&cfg, vec![v; n], honest_hooks(n), metrics.clone());
        let sym_bits =
            metrics.snapshot().logical_bits_with_prefix("consensus.matching.symbol") as f64;
        per_n.push((n, sym_bits));
    }
    for w in per_n.windows(2) {
        let (n1, b1) = w[0];
        let (n2, b2) = w[1];
        let coeff1 = dsel::linear_coefficient(n1, (n1 - 1) / 3);
        let coeff2 = dsel::linear_coefficient(n2, (n2 - 1) / 3);
        let predicted = coeff2 / coeff1;
        let got = b2 / b1;
        assert!(
            (got / predicted - 1.0).abs() < 0.25,
            "n={n1}->{n2}: symbol traffic ratio {got}, predicted {predicted}"
        );
    }
}

#[test]
fn diagnosis_overhead_is_bounded_under_attack() {
    use mvbc_adversary::WorstCaseDiagnosis;
    use mvbc_core::ProtocolHooks;
    // Even the worst-case adversary adds only the bounded t(t+1)
    // diagnosis term of Eq. (1): compare attacked vs failure-free cost.
    let (n, t, l, d) = (4usize, 1usize, 8192usize, 64usize);
    let (clean, _) = measure(n, t, l, Some(d));

    let cfg = ConsensusConfig::with_gen_bytes(n, t, l, d).unwrap();
    let metrics = MetricsSink::new();
    let v = test_value(l, 4);
    let mut hooks: Vec<Box<dyn ProtocolHooks>> = honest_hooks(n);
    hooks[0] = Box::new(WorstCaseDiagnosis::new(vec![0]));
    let run = simulate_consensus(&cfg, vec![v.clone(); n], hooks, metrics.clone());
    for id in 1..n {
        assert_eq!(run.outputs[id], v);
    }
    let attacked = metrics.snapshot().total_logical_bits() as f64;

    // Diagnosis adds (per stage) about (n-t)/(n-2t)*D*B + n(n-t)*B bits;
    // with at most t(t+1) = 2 stages the overhead is bounded. Generous
    // envelope: attacked <= clean + 3 * model-diagnosis-term. (The
    // attacked run can even be *cheaper* than the clean one: once the
    // faulty processor is isolated, nobody pays for its traffic in the
    // remaining generations — the flip side of "memory across
    // generations".)
    let b = dsel::model_b_phase_king(n, t);
    let d_bits = (d * 8) as f64;
    let diag_term = (t * (t + 1)) as f64
        * ((n - t) as f64 / (n - 2 * t) as f64 * d_bits + (n * (n - t)) as f64)
        * b;
    assert_eq!(
        run.reports[1].diagnosis_invocations,
        (t * (t + 1)) as u64,
        "the worst-case adversary must exhaust its diagnosis budget"
    );
    assert!(
        attacked < clean + 3.0 * diag_term,
        "attacked {attacked} vs clean {clean} + 3x diagnosis model {diag_term}"
    );
}
