//! Property-based tests of the consensus Termination / Consistency /
//! Validity guarantees and the diagnosis-graph invariants (Lemma 4,
//! Theorem 1), under randomized inputs and randomized Byzantine
//! behaviour.

use mvbc_adversary::RandomAdversary;
use mvbc_core::{simulate_consensus, ConsensusConfig, ProtocolHooks};
use mvbc_metrics::MetricsSink;
use mvbc_systests::{honest_hooks, test_value};
use proptest::prelude::*;

fn check_safety(
    n: usize,
    t: usize,
    inputs: Vec<Vec<u8>>,
    faulty: Vec<usize>,
    adversary_seed: u64,
    aggressiveness: f64,
    gen_bytes: usize,
) -> Result<(), TestCaseError> {
    let l = inputs[0].len();
    let cfg = ConsensusConfig::with_gen_bytes(n, t, l, gen_bytes).unwrap();
    let mut hooks = honest_hooks(n);
    for (i, &f) in faulty.iter().enumerate() {
        hooks[f] = Box::new(RandomAdversary::new(
            adversary_seed.wrapping_add(i as u64 * 7919),
            aggressiveness,
        )) as Box<dyn ProtocolHooks>;
    }
    let run = simulate_consensus(&cfg, inputs.clone(), hooks, MetricsSink::new());

    let honest: Vec<usize> = (0..n).filter(|i| !faulty.contains(i)).collect();
    // Consistency.
    for w in honest.windows(2) {
        prop_assert_eq!(
            &run.outputs[w[0]],
            &run.outputs[w[1]],
            "consistency violated between {} and {}",
            w[0],
            w[1]
        );
    }
    // Validity: if all honest inputs are equal, that is the decision.
    let first_honest = &inputs[honest[0]];
    if honest.iter().all(|&h| &inputs[h] == first_honest) {
        prop_assert_eq!(&run.outputs[honest[0]], first_honest, "validity violated");
    } else {
        // Decision must be one of the honest inputs or the default
        // (no value forging).
        let decided = &run.outputs[honest[0]];
        let legal = honest.iter().any(|&h| &inputs[h] == decided)
            || *decided == cfg.default_value();
        prop_assert!(legal, "forged decision value");
    }
    // Theorem 1 bound + Lemma 4 safety.
    for &h in &honest {
        let r = &run.reports[h];
        prop_assert!(r.diagnosis_invocations <= (t * (t + 1)) as u64);
        for iso in &r.isolated {
            prop_assert!(faulty.contains(iso), "fault-free processor isolated");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full multi-round simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn honest_unanimous_any_value(
        seed in any::<u64>(),
        l in 1usize..200,
        gen in 1usize..64,
    ) {
        let v = test_value(l, seed);
        check_safety(4, 1, vec![v; 4], vec![], 0, 0.0, gen)?;
    }

    #[test]
    fn honest_arbitrary_inputs(
        seeds in prop::collection::vec(any::<u64>(), 4),
        l in 1usize..100,
    ) {
        let inputs: Vec<Vec<u8>> = seeds.iter().map(|&s| test_value(l, s)).collect();
        check_safety(4, 1, inputs, vec![], 0, 0.0, 32)?;
    }

    #[test]
    fn one_random_byzantine_n4(
        seed in any::<u64>(),
        faulty in 0usize..4,
        aggr in 0.05f64..0.6,
    ) {
        let v = test_value(64, 42);
        check_safety(4, 1, vec![v; 4], vec![faulty], seed, aggr, 16)?;
    }

    #[test]
    fn two_random_byzantine_n7(
        seed in any::<u64>(),
        f1 in 0usize..7,
        f2 in 0usize..7,
        aggr in 0.05f64..0.4,
    ) {
        prop_assume!(f1 != f2);
        let v = test_value(48, 7);
        check_safety(7, 2, vec![v; 7], vec![f1, f2], seed, aggr, 16)?;
    }

    #[test]
    fn byzantine_with_mixed_honest_inputs(
        seed in any::<u64>(),
        split in 1usize..4,
    ) {
        // Some honest processors hold a different value; adversary at 4.
        let va = test_value(40, 1);
        let vb = test_value(40, 2);
        let mut inputs: Vec<Vec<u8>> = (0..7).map(|i| if i < split { vb.clone() } else { va.clone() }).collect();
        inputs[4] = test_value(40, 3); // the faulty one's input is irrelevant
        check_safety(7, 2, inputs, vec![4], seed, 0.3, 20)?;
    }
}

#[test]
fn aggressive_adversary_sweep() {
    // Deterministic sweep of aggressiveness levels (outside proptest to
    // pin the seeds).
    for (i, aggr) in [0.1, 0.5, 0.9, 1.0].into_iter().enumerate() {
        let v = test_value(48, 9);
        check_safety(4, 1, vec![v; 4], vec![2], 1000 + i as u64, aggr, 12).unwrap();
    }
}

#[test]
fn all_positions_byzantine_once() {
    for f in 0..4 {
        let v = test_value(32, f as u64);
        check_safety(4, 1, vec![v; 4], vec![f], 77, 0.4, 8).unwrap();
    }
}
