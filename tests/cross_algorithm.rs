//! Cross-algorithm integration tests: Liang-Vaidya vs the two baselines
//! on identical scenarios (correctness and complexity ordering), plus the
//! error-freedom separation of experiment E8.

use mvbc_baselines::bitwise::simulate_bitwise;
use mvbc_baselines::fitzi_hirt::{
    find_collision, simulate_fitzi_hirt, simulate_fitzi_hirt_with_attack, FhOutcome,
    FitziHirtConfig, SplitWorldAttack,
};
use mvbc_core::{simulate_consensus, ConsensusConfig};
use mvbc_metrics::MetricsSink;
use mvbc_systests::{honest_hooks, test_value};

#[test]
fn all_three_algorithms_agree_on_unanimous_inputs() {
    let (n, t, l) = (4usize, 1usize, 512usize);
    let v = test_value(l, 11);

    let cfg = ConsensusConfig::new(n, t, l).unwrap();
    let ours = simulate_consensus(&cfg, vec![v.clone(); n], honest_hooks(n), MetricsSink::new());
    assert!(ours.outputs.iter().all(|o| *o == v));

    let bitwise = simulate_bitwise(n, t, vec![v.clone(); n], MetricsSink::new());
    assert!(bitwise.iter().all(|o| *o == v));

    let fh = FitziHirtConfig::new(n, t, l);
    let fh_out = simulate_fitzi_hirt(&fh, vec![v.clone(); n], MetricsSink::new());
    assert!(fh_out.iter().all(|o| *o == FhOutcome::Delivered(v.clone())));
}

#[test]
fn ours_beats_bitwise_for_large_l() {
    // E3's headline: for large L the Liang-Vaidya algorithm transmits
    // far fewer bits than per-bit consensus.
    let (n, t, l) = (4usize, 1usize, 16 * 1024usize);
    let v = test_value(l, 12);

    let cfg = ConsensusConfig::new(n, t, l).unwrap();
    let ours_metrics = MetricsSink::new();
    let _ = simulate_consensus(&cfg, vec![v.clone(); n], honest_hooks(n), ours_metrics.clone());
    let ours = ours_metrics.snapshot().total_logical_bits() as f64;

    let bw_metrics = MetricsSink::new();
    let _ = simulate_bitwise(n, t, vec![v.clone(); n], bw_metrics.clone());
    let bitwise = bw_metrics.snapshot().total_logical_bits() as f64;

    assert!(
        ours * 5.0 < bitwise,
        "expected >5x advantage at L = 16 KiB: ours {ours}, bitwise {bitwise}"
    );
}

#[test]
fn bitwise_wins_only_for_tiny_l() {
    // The crossover: for very small L the per-generation BSB overhead of
    // Liang-Vaidya exceeds the bitwise cost. (This is why the paper
    // targets large L.)
    let (n, t, l) = (4usize, 1usize, 2usize);
    let v = test_value(l, 13);

    let cfg = ConsensusConfig::new(n, t, l).unwrap();
    let ours_metrics = MetricsSink::new();
    let _ = simulate_consensus(&cfg, vec![v.clone(); n], honest_hooks(n), ours_metrics.clone());
    let ours = ours_metrics.snapshot().total_logical_bits();

    let bw_metrics = MetricsSink::new();
    let _ = simulate_bitwise(n, t, vec![v.clone(); n], bw_metrics.clone());
    let bitwise = bw_metrics.snapshot().total_logical_bits();

    assert!(
        bitwise < ours,
        "at L = 2 bytes bitwise ({bitwise}) should beat ours ({ours})"
    );
}

#[test]
fn error_freedom_separation_on_colliding_inputs() {
    // E8: the same scenario — honest processors hold two values that
    // collide under the Fitzi-Hirt hash, Byzantine processors equivocate.
    // FH loses agreement; Liang-Vaidya (no hashing) stays correct.
    let (n, t, l) = (7usize, 2usize, 64usize);
    let fh_cfg = FitziHirtConfig::new(n, t, l);
    let keys = fh_cfg.keys();
    let v = test_value(l, 14);
    let v2 = find_collision(&v, &keys).expect("value long enough");

    let mut inputs = vec![v.clone(); n];
    inputs[3].clone_from(&v2);
    inputs[4].clone_from(&v2);

    // Fitzi-Hirt under the split-world attack: agreement broken.
    let fh_out = simulate_fitzi_hirt_with_attack(
        &fh_cfg,
        inputs.clone(),
        vec![5, 6],
        Some(SplitWorldAttack { v: v.clone(), v2: v2.clone() }),
        MetricsSink::new(),
    );
    let fh_agree = (0..5).all(|i| fh_out[i] == fh_out[0]);
    assert!(!fh_agree, "FH should fail on collision: {fh_out:?}");

    // Liang-Vaidya on the same inputs with colluding Byzantine nodes:
    // fault-free decisions stay identical and legal.
    use mvbc_adversary::RandomAdversary;
    use mvbc_core::ProtocolHooks;
    let cfg = ConsensusConfig::new(n, t, l).unwrap();
    let mut hooks: Vec<Box<dyn ProtocolHooks>> = honest_hooks(n);
    hooks[5] = Box::new(RandomAdversary::new(1, 0.4));
    hooks[6] = Box::new(RandomAdversary::new(2, 0.4));
    let run = simulate_consensus(&cfg, inputs.clone(), hooks, MetricsSink::new());
    for i in 1..5 {
        assert_eq!(run.outputs[i], run.outputs[0], "LV consistency violated");
    }
    let decided = &run.outputs[0];
    assert!(
        *decided == v || *decided == v2 || *decided == cfg.default_value(),
        "LV forged a value"
    );
}

#[test]
fn complexity_ordering_matches_paper_table() {
    // The paper's positioning (§1): both Liang-Vaidya and Fitzi-Hirt are
    // O(nL)-class for large L — "similar complexity" — and both beat the
    // Ω(n²L) bitwise approach; the advantage of Liang-Vaidya over FH is
    // error-freedom (separate test), not raw bits. Assert exactly that:
    // ours and FH within a small factor of each other, both far below
    // bitwise.
    let (n, t, l) = (7usize, 2usize, 8 * 1024usize);
    let v = test_value(l, 15);

    let cfg = ConsensusConfig::new(n, t, l).unwrap();
    let m1 = MetricsSink::new();
    let _ = simulate_consensus(&cfg, vec![v.clone(); n], honest_hooks(n), m1.clone());
    let ours = m1.snapshot().total_logical_bits();

    let fh_cfg = FitziHirtConfig::new(n, t, l);
    let m2 = MetricsSink::new();
    let _ = simulate_fitzi_hirt(&fh_cfg, vec![v.clone(); n], m2.clone());
    let fh = m2.snapshot().total_logical_bits();

    let m3 = MetricsSink::new();
    let _ = simulate_bitwise(n, t, vec![v.clone(); n], m3.clone());
    let bitwise = m3.snapshot().total_logical_bits();

    let (ours, fh, bitwise) = (ours as f64, fh as f64, bitwise as f64);
    assert!(
        ours < 3.0 * fh && fh < 3.0 * ours,
        "ours ({ours}) and FH ({fh}) should be within 3x at L = 8 KiB"
    );
    assert!(ours * 3.0 < bitwise, "ours {ours} should be far below bitwise {bitwise}");
    assert!(fh * 3.0 < bitwise, "FH {fh} should be far below bitwise {bitwise}");
}
