//! Property tests of the diagnosis-graph invariants (paper §2 / Lemma 4)
//! under arbitrary *legal* update sequences — i.e. sequences in which
//! every removed edge touches a faulty vertex, which Lemma 4 proves is
//! the only kind the protocol ever produces.

use mvbc_core::DiagGraph;
use proptest::prelude::*;

/// Applies a sequence of bad-edge removals (each touching a designated
/// faulty vertex) interleaved with isolation enforcement.
fn apply_legal_removals(
    n: usize,
    t: usize,
    faulty: &[usize],
    script: &[(usize, usize)],
) -> DiagGraph {
    let mut g = DiagGraph::new(n, t);
    for &(f_idx, other) in script {
        let f = faulty[f_idx % faulty.len()];
        let o = other % n;
        if o != f {
            g.remove_edge(f, o);
        }
        g.enforce_isolation();
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn honest_vertices_never_isolated(
        script in prop::collection::vec((any::<usize>(), any::<usize>()), 0..60),
    ) {
        // n = 7, t = 2, faulty = {5, 6}: under any legal removal script,
        // honest vertices keep >= n - t - 1 honest neighbours and are
        // never isolated (Lemma 4's consequences 2 and 3).
        let (n, t) = (7usize, 2usize);
        let faulty = [5usize, 6];
        let g = apply_legal_removals(n, t, &faulty, &script);
        for honest in 0..5usize {
            prop_assert!(!g.is_isolated(honest), "honest {honest} isolated");
            // All honest-honest edges intact.
            for other in 0..5usize {
                if honest != other {
                    prop_assert!(g.trusts(honest, other));
                }
            }
        }
    }

    #[test]
    fn edge_budget_bounds_removals(
        script in prop::collection::vec((any::<usize>(), any::<usize>()), 0..100),
    ) {
        // Once both faulty vertices are isolated, the total number of
        // distinct removed edges is bounded: each faulty vertex costs at
        // most (n - 1) edges, and removals stop (the protocol never
        // touches edges between honest vertices).
        let (n, t) = (7usize, 2usize);
        let faulty = [2usize, 4];
        let g = apply_legal_removals(n, t, &faulty, &script);
        prop_assert!(g.total_removed() <= 2 * (n - 1));
        // Participants mask agrees with isolation flags.
        let parts = g.participants();
        for (v, &active) in parts.iter().enumerate() {
            prop_assert_eq!(active, !g.is_isolated(v));
        }
    }

    #[test]
    fn isolation_is_monotone_and_threshold_driven(
        removals in prop::collection::btree_set(0usize..6, 0..=6),
    ) {
        // Remove a chosen subset of vertex 6's edges (n = 7, t = 2):
        // vertex 6 must be isolated iff more than t edges were removed.
        let (n, t) = (7usize, 2usize);
        let mut g = DiagGraph::new(n, t);
        for &other in &removals {
            g.remove_edge(6, other);
        }
        g.enforce_isolation();
        prop_assert_eq!(g.is_isolated(6), removals.len() > t);
        let _ = n;
    }

    #[test]
    fn active_ids_sorted_and_consistent(
        script in prop::collection::vec((any::<usize>(), any::<usize>()), 0..40),
    ) {
        let g = apply_legal_removals(10, 3, &[7, 8, 9], &script);
        let ids = g.active_ids();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        for &v in &ids {
            prop_assert!(!g.is_isolated(v));
        }
        prop_assert!(ids.len() >= 7, "honest vertices always active");
    }
}

#[test]
fn degree_accounting_exact() {
    let mut g = DiagGraph::new(5, 1);
    assert_eq!(g.degree(0), 4);
    g.remove_edge(0, 1);
    g.remove_edge(0, 2);
    assert_eq!(g.degree(0), 2);
    assert_eq!(g.removed_count(0), 2);
    assert_eq!(g.removed_count(3), 0);
    assert_eq!(g.total_removed(), 2);
}
