//! Bounded model-checking sweep for the §4 broadcast extension:
//! canonical adversary strategies at every protocol decision point of
//! the dispersal / echo / diagnosis pipeline, for `n = 4, t = 1`.
//!
//! Mirrors `exhaustive_small_n.rs` (which sweeps the consensus
//! protocol). Broadcast's properties differ from consensus: *agreement*
//! must hold in every branch; *validity* (delivered = source input) only
//! when the source is fault-free.

use mvbc_broadcast::{
    simulate_broadcast, BroadcastConfig, BroadcastHooks, NoopBroadcastHooks,
};
use mvbc_bsb::BsbHooks;
use mvbc_core::DiagGraph;
use mvbc_metrics::MetricsSink;
use mvbc_netsim::NodeId;

const N: usize = 4;
const T: usize = 1;
const VALUE_BYTES: usize = 9;

/// Per-receiver symbol treatment (dispersal or echo rounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Honest,
    Flip,
    Drop,
}

const ACTIONS: [Action; 3] = [Action::Honest, Action::Flip, Action::Drop];

impl Action {
    /// Applies to an outgoing payload; returns whether to send.
    fn apply(self, payload: &mut [u8]) -> bool {
        match self {
            Action::Honest => true,
            Action::Flip => {
                payload.iter_mut().for_each(|b| *b = !*b);
                true
            }
            Action::Drop => false,
        }
    }
}

/// One canonical scripted behaviour for a Byzantine broadcast participant.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BcStrategy {
    /// Dispersal-round symbol action per receiver (used when source).
    dispersal: Vec<Action>,
    /// Echo-round symbol action per receiver (used when in the echo set).
    echo: Vec<Action>,
    /// Claim `Detected = true` regardless.
    false_detect: bool,
    /// Corrupt the diagnosis-stage data / claim broadcasts.
    corrupt_diagnosis: bool,
    /// Lie `false` in the whole trust vector.
    accuse_all: bool,
    /// Use a different input when source.
    input_flip: bool,
}

impl BcStrategy {
    /// All-receivers-uniform grid: 3 dispersal × 3 echo × 2 × 2 × 2 × 2
    /// = 144 strategies (uniform per-receiver actions keep the sweep
    /// tractable; the mixed per-receiver patterns are covered for the
    /// consensus pipeline, which shares the symbol-comparison machinery).
    fn grid(n: usize) -> Vec<BcStrategy> {
        let mut out = Vec::new();
        for dispersal in ACTIONS {
            for echo in ACTIONS {
                for false_detect in [false, true] {
                    for corrupt_diagnosis in [false, true] {
                        for accuse_all in [false, true] {
                            for input_flip in [false, true] {
                                out.push(BcStrategy {
                                    dispersal: vec![dispersal; n],
                                    echo: vec![echo; n],
                                    false_detect,
                                    corrupt_diagnosis,
                                    accuse_all,
                                    input_flip,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[derive(Debug)]
struct ScriptedBc {
    strategy: BcStrategy,
}

impl BsbHooks for ScriptedBc {}

impl BroadcastHooks for ScriptedBc {
    fn observe_generation_start(&mut self, _g: usize, _me: NodeId, _diag: &DiagGraph) {}

    fn input_override(&mut self, _g: usize, value: &mut Vec<u8>) {
        if self.strategy.input_flip {
            value.iter_mut().for_each(|b| *b = !*b);
        }
    }

    fn dispersal_symbol(&mut self, _g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        self.strategy.dispersal[to].apply(payload)
    }

    fn echo_symbol(&mut self, _g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        self.strategy.echo[to].apply(payload)
    }

    fn detected_flag(&mut self, _g: usize, flag: &mut bool) {
        if self.strategy.false_detect {
            *flag = true;
        }
    }

    fn data_bits(&mut self, _g: usize, bits: &mut Vec<bool>) {
        if self.strategy.corrupt_diagnosis {
            bits.iter_mut().for_each(|b| *b = !*b);
        }
    }

    fn echo_claim_bits(&mut self, _g: usize, bits: &mut Vec<bool>) {
        if self.strategy.corrupt_diagnosis {
            bits.iter_mut().for_each(|b| *b = !*b);
        }
    }

    fn trust_bits(&mut self, _g: usize, bits: &mut Vec<bool>) {
        if self.strategy.accuse_all {
            bits.iter_mut().for_each(|b| *b = false);
        }
    }
}

fn value() -> Vec<u8> {
    (0..VALUE_BYTES).map(|i| (i * 41 + 11) as u8).collect()
}

/// Runs one branch; asserts agreement always, validity when the source
/// is honest, and the diagnosis-safety invariants.
fn check(source: usize, faulty: usize, strategy: &BcStrategy) {
    let cfg = BroadcastConfig::with_gen_bytes(N, T, source, VALUE_BYTES, VALUE_BYTES).unwrap();
    let v = value();
    let hooks: Vec<Box<dyn BroadcastHooks>> = (0..N)
        .map(|i| {
            if i == faulty {
                Box::new(ScriptedBc { strategy: strategy.clone() }) as Box<dyn BroadcastHooks>
            } else {
                NoopBroadcastHooks::boxed()
            }
        })
        .collect();
    let run = simulate_broadcast(&cfg, v.clone(), hooks, MetricsSink::new());

    let honest: Vec<usize> = (0..N).filter(|&i| i != faulty).collect();
    // Agreement in every branch.
    for w in honest.windows(2) {
        assert_eq!(
            run.outputs[w[0]], run.outputs[w[1]],
            "source={source} faulty={faulty} strategy={strategy:?}: agreement violated"
        );
    }
    // Validity when the source is fault-free.
    if source != faulty {
        for &h in &honest {
            assert_eq!(
                run.outputs[h], v,
                "source={source} faulty={faulty} strategy={strategy:?}: validity violated"
            );
        }
    }
    // Diagnosis safety: honest processors never isolated.
    for &h in &honest {
        assert!(
            run.reports[h].isolated.iter().all(|&i| i == faulty),
            "source={source} faulty={faulty} strategy={strategy:?}: honest isolated"
        );
    }
}

#[test]
fn sweep_byzantine_source() {
    // The faulty processor IS the source: every strategy, agreement must
    // hold (validity is vacuous).
    for strategy in BcStrategy::grid(N) {
        check(1, 1, &strategy);
    }
}

#[test]
fn sweep_byzantine_echo_and_outsider() {
    // The faulty processor is not the source: validity must hold too.
    // Position 0/2/3 relative to source 1 covers echo-set members and
    // the outsider.
    for strategy in BcStrategy::grid(N) {
        for faulty in [0usize, 2, 3] {
            check(1, faulty, &strategy);
        }
    }
}

#[test]
fn sweep_multi_generation_budget() {
    // Three generations with a persistent echo corruptor: the dispute
    // budget bounds diagnosis stages; later generations run clean.
    let cfg = BroadcastConfig::with_gen_bytes(N, T, 0, 3 * VALUE_BYTES, VALUE_BYTES).unwrap();
    let v: Vec<u8> = (0..3 * VALUE_BYTES).map(|i| i as u8).collect();
    let mut strategy = BcStrategy::grid(N)[0].clone();
    strategy.echo = vec![Action::Flip; N];
    let hooks: Vec<Box<dyn BroadcastHooks>> = (0..N)
        .map(|i| {
            if i == 2 {
                Box::new(ScriptedBc { strategy: strategy.clone() }) as Box<dyn BroadcastHooks>
            } else {
                NoopBroadcastHooks::boxed()
            }
        })
        .collect();
    let run = simulate_broadcast(&cfg, v.clone(), hooks, MetricsSink::new());
    for h in [0usize, 1, 3] {
        assert_eq!(run.outputs[h], v);
        assert!(
            run.reports[h].diagnosis_invocations <= (T * (T + 2)) as u64,
            "dispute budget exceeded: {}",
            run.reports[h].diagnosis_invocations
        );
    }
}
