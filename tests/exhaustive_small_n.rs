//! Bounded model-checking sweep: every canonical adversary strategy, at
//! every faulty position, against the full consensus protocol.
//!
//! The scripted adversary (`mvbc_adversary::Strategy`) reduces the
//! Byzantine content-choice space at each protocol decision point to a
//! small set of canonical behaviours (see its module docs for the
//! equivalence-class argument). This sweep executes the *entire* reduced
//! space for `n = 4, t = 1` and asserts, on every branch:
//!
//! - **Termination** — the simulation completes;
//! - **Consistency** — all fault-free processors decide identically;
//! - **Validity** — when fault-free inputs are unanimous they decide
//!   that value (Lemma 1 guarantees `P_match` exists, so the default
//!   decision would be a violation);
//! - **diagnosis-graph safety** — no fault-free processor is ever
//!   isolated, and the diagnosis stage runs at most `t(t+1)` times
//!   (Theorem 1).
//!
//! The default tests sweep the protocol-stage grid (972 strategies ×
//! 4 faulty positions); the full grid including the BSB-equivocation and
//! input axes (3 888 × 4 runs) is behind `--ignored` for scheduled runs.

use mvbc_adversary::{ScriptedAdversary, Strategy};
use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks, ProtocolHooks};
use mvbc_metrics::MetricsSink;

const N: usize = 4;
const T: usize = 1;

/// One generation's worth of value: keeps each run to a single
/// generation so the sweep exercises every stage without multiplying
/// wall-clock time. Multi-generation behaviour (memory across
/// generations) is swept separately below.
const VALUE_BYTES: usize = 8;

fn common_value() -> Vec<u8> {
    (0..VALUE_BYTES).map(|i| (i as u8).wrapping_mul(37).wrapping_add(5)).collect()
}

/// Runs one branch and asserts all invariants; returns whether the
/// diagnosis stage ran (for coverage accounting).
fn check_branch(cfg: &ConsensusConfig, faulty: usize, strategy: &Strategy) -> bool {
    let v = common_value();
    let hooks: Vec<Box<dyn ProtocolHooks>> = (0..N)
        .map(|i| {
            if i == faulty {
                Box::new(ScriptedAdversary::new(strategy.clone())) as Box<dyn ProtocolHooks>
            } else {
                NoopHooks::boxed()
            }
        })
        .collect();
    let run = simulate_consensus(cfg, vec![v.clone(); N], hooks, MetricsSink::new());

    let honest: Vec<usize> = (0..N).filter(|&i| i != faulty).collect();
    for &h in &honest {
        // Validity (honest inputs unanimous).
        assert_eq!(
            run.outputs[h], v,
            "faulty={faulty} strategy={strategy:?}: node {h} decided wrong value"
        );
        // Diagnosis-graph safety: no honest processor isolated, bound on
        // diagnosis invocations.
        let rep = &run.reports[h];
        for &iso in &rep.isolated {
            assert_eq!(
                iso, faulty,
                "faulty={faulty} strategy={strategy:?}: honest {iso} isolated"
            );
        }
        assert!(
            rep.diagnosis_invocations <= (T * (T + 1)) as u64,
            "faulty={faulty} strategy={strategy:?}: diagnosis ran {} > t(t+1) times",
            rep.diagnosis_invocations
        );
        assert!(!rep.defaulted, "faulty={faulty} strategy={strategy:?}: defaulted");
    }
    // Consistency (redundant given validity, kept for the divergent-input
    // sweeps where validity is vacuous).
    for w in honest.windows(2) {
        assert_eq!(run.outputs[w[0]], run.outputs[w[1]]);
    }
    run.reports[honest[0]].diagnosis_invocations > 0
}

#[test]
fn sweep_protocol_grid_all_faulty_positions() {
    let cfg = ConsensusConfig::with_gen_bytes(N, T, VALUE_BYTES, VALUE_BYTES).unwrap();
    let mut branches = 0u64;
    let mut diagnosed = 0u64;
    for faulty in 0..N {
        for strategy in Strategy::protocol_grid(N, faulty) {
            if check_branch(&cfg, faulty, &strategy) {
                diagnosed += 1;
            }
            branches += 1;
        }
    }
    assert_eq!(branches, 4 * 27 * 36);
    // Coverage sanity: a substantial share of strategies must actually
    // reach the diagnosis stage, otherwise the sweep is vacuous.
    assert!(
        diagnosed > branches / 10,
        "only {diagnosed}/{branches} branches reached diagnosis"
    );
}

#[test]
#[ignore = "full grid (~16k runs); run with --ignored in scheduled sweeps"]
fn sweep_full_grid_all_faulty_positions() {
    let cfg = ConsensusConfig::with_gen_bytes(N, T, VALUE_BYTES, VALUE_BYTES).unwrap();
    for faulty in 0..N {
        for strategy in Strategy::grid(N, faulty) {
            check_branch(&cfg, faulty, &strategy);
        }
    }
}

#[test]
#[ignore = "n = 5 protocol grid (~15k runs); run with --ignored in scheduled sweeps"]
fn sweep_protocol_grid_n5() {
    // n = 5, t = 1: a non-tight network (n > 3t + 1) — the slack seat
    // changes which P_match sets exist, so the sweep covers different
    // protocol paths than n = 4.
    let cfg = ConsensusConfig::with_gen_bytes(5, 1, 9, 9).unwrap();
    let v: Vec<u8> = (0..9).map(|i| (i * 29 + 3) as u8).collect();
    for faulty in 0..5usize {
        for strategy in Strategy::protocol_grid(5, faulty) {
            let hooks: Vec<Box<dyn ProtocolHooks>> = (0..5)
                .map(|i| {
                    if i == faulty {
                        Box::new(ScriptedAdversary::new(strategy.clone()))
                            as Box<dyn ProtocolHooks>
                    } else {
                        NoopHooks::boxed()
                    }
                })
                .collect();
            let run = simulate_consensus(&cfg, vec![v.clone(); 5], hooks, MetricsSink::new());
            for i in 0..5 {
                if i == faulty {
                    continue;
                }
                assert_eq!(
                    run.outputs[i], v,
                    "faulty={faulty} strategy={strategy:?}: node {i} wrong"
                );
                assert!(run.reports[i].diagnosis_invocations <= 2);
                assert!(run.reports[i].isolated.iter().all(|&x| x == faulty));
            }
        }
    }
}

#[test]
fn sweep_multi_generation_isolation() {
    // Three generations with a persistently-corrupting strategy: after
    // at most t(t+1) = 2 diagnoses the faulty processor must be isolated
    // or silenced, and later generations must run diagnosis-free.
    let cfg = ConsensusConfig::with_gen_bytes(N, T, 3 * VALUE_BYTES, VALUE_BYTES).unwrap();
    let v: Vec<u8> = (0..3 * VALUE_BYTES).map(|i| i as u8).collect();
    for faulty in 0..N {
        // The canonical always-corrupt strategy.
        let mut strategy = Strategy::honest(N);
        for j in 0..N {
            if j != faulty {
                strategy.symbols[j] = mvbc_adversary::SymbolAction::Flip;
            }
        }
        strategy.m_lie = mvbc_adversary::VectorLie::AllTrue;
        let hooks: Vec<Box<dyn ProtocolHooks>> = (0..N)
            .map(|i| {
                if i == faulty {
                    Box::new(ScriptedAdversary::new(strategy.clone())) as Box<dyn ProtocolHooks>
                } else {
                    NoopHooks::boxed()
                }
            })
            .collect();
        let run = simulate_consensus(&cfg, vec![v.clone(); N], hooks, MetricsSink::new());
        for i in 0..N {
            if i == faulty {
                continue;
            }
            assert_eq!(run.outputs[i], v, "faulty={faulty}");
            assert!(
                run.reports[i].diagnosis_invocations <= (T * (T + 1)) as u64,
                "faulty={faulty}: Theorem 1 bound violated"
            );
        }
    }
}

#[test]
fn sweep_divergent_inputs_consistency() {
    // Honest inputs differ: validity is vacuous but consistency and the
    // default rule must hold under every M-stage lie (the sub-grid that
    // can affect P_match discovery).
    let cfg = ConsensusConfig::with_gen_bytes(N, T, VALUE_BYTES, VALUE_BYTES).unwrap();
    for faulty in 0..N {
        for strategy in Strategy::protocol_grid(N, faulty) {
            // Only matching-stage axes matter here; skip pure
            // diagnosis-stage variants to keep the sweep focused.
            if strategy.corrupt_rsharp || strategy.false_detect {
                continue;
            }
            let inputs: Vec<Vec<u8>> = (0..N)
                .map(|i| (0..VALUE_BYTES).map(|b| (i * 16 + b) as u8).collect())
                .collect();
            let hooks: Vec<Box<dyn ProtocolHooks>> = (0..N)
                .map(|i| {
                    if i == faulty {
                        Box::new(ScriptedAdversary::new(strategy.clone()))
                            as Box<dyn ProtocolHooks>
                    } else {
                        NoopHooks::boxed()
                    }
                })
                .collect();
            let run = simulate_consensus(&cfg, inputs, hooks, MetricsSink::new());
            let honest: Vec<usize> = (0..N).filter(|&i| i != faulty).collect();
            for w in honest.windows(2) {
                assert_eq!(
                    run.outputs[w[0]], run.outputs[w[1]],
                    "faulty={faulty} strategy={strategy:?}: consistency violated"
                );
            }
        }
    }
}
