//! Golden-transcript tests: the simulator is a deterministic lockstep
//! round model, so a run's full network trace is a pure function of the
//! parameters, inputs and adversary strategy. These tests pin that
//! determinism (identical digests run-to-run), cross-check the trace
//! against the metrics, and use trace structure to verify protocol-shape
//! claims (who talks in which stage).

use mvbc_adversary::CorruptSymbolTo;
use mvbc_bsb::{BsbDriver, EigDriver, PhaseKingDriver};
use mvbc_core::{simulate_consensus_traced, ConsensusConfig, NoopHooks, ProtocolHooks};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::trace::TraceSink;

fn drivers(n: usize, eig: bool) -> Vec<Box<dyn BsbDriver>> {
    (0..n)
        .map(|_| {
            if eig {
                Box::new(EigDriver) as Box<dyn BsbDriver>
            } else {
                Box::new(PhaseKingDriver) as Box<dyn BsbDriver>
            }
        })
        .collect()
}

fn traced_run(
    cfg: &ConsensusConfig,
    byzantine: Option<(usize, Vec<usize>)>,
    eig: bool,
) -> (TraceSink, MetricsSink) {
    let v: Vec<u8> = (0..cfg.value_bytes).map(|i| (i * 13 + 7) as u8).collect();
    let hooks: Vec<Box<dyn ProtocolHooks>> = (0..cfg.n)
        .map(|i| match &byzantine {
            Some((f, targets)) if *f == i => {
                Box::new(CorruptSymbolTo::new(targets.clone())) as Box<dyn ProtocolHooks>
            }
            _ => NoopHooks::boxed(),
        })
        .collect();
    let trace = TraceSink::new();
    let metrics = MetricsSink::new();
    let run = simulate_consensus_traced(
        cfg,
        vec![v.clone(); cfg.n],
        hooks,
        drivers(cfg.n, eig),
        metrics.clone(),
        trace.clone(),
    );
    let honest = (0..cfg.n).find(|i| byzantine.as_ref().map(|(f, _)| f != i).unwrap_or(true));
    assert_eq!(run.outputs[honest.unwrap()], v);
    (trace, metrics)
}

#[test]
fn identical_runs_produce_identical_traces() {
    let cfg = ConsensusConfig::new(4, 1, 64).unwrap();
    let (a, _) = traced_run(&cfg, None, false);
    let (b, _) = traced_run(&cfg, None, false);
    assert_eq!(a.digest(), b.digest(), "honest runs must be trace-identical");
    assert_eq!(a.len(), b.len());

    // Under attack too: the adversary is deterministic, so the whole
    // attacked transcript replays bit-identically.
    let (c, _) = traced_run(&cfg, Some((0, vec![3])), false);
    let (d, _) = traced_run(&cfg, Some((0, vec![3])), false);
    assert_eq!(c.digest(), d.digest(), "attacked runs must be trace-identical");
    assert_ne!(a.digest(), c.digest(), "the attack must change the transcript");
}

#[test]
fn trace_agrees_with_metrics() {
    let cfg = ConsensusConfig::new(4, 1, 96).unwrap();
    let (trace, metrics) = traced_run(&cfg, None, false);
    let snap = metrics.snapshot();
    assert_eq!(trace.len() as u64, snap.total_messages(), "message counts must agree");
    let trace_bits: u64 = trace.events().iter().map(|e| e.logical_bits).sum();
    assert_eq!(trace_bits, snap.total_logical_bits(), "bit totals must agree");
}

#[test]
fn matching_stage_sends_one_symbol_per_trusted_pair() {
    // Protocol-shape check via the trace: in a failure-free run, the
    // matching stage's symbol dispersal is exactly one message per
    // ordered pair per generation (each processor sends its own coded
    // symbol to every other).
    let cfg = ConsensusConfig::with_gen_bytes(4, 1, 32, 8).unwrap(); // 4 generations
    let (trace, _) = traced_run(&cfg, None, false);
    let symbol_events = trace.events_with_tag_prefix("consensus.matching.symbol");
    assert_eq!(symbol_events.len(), 4 * (4 * 3));
    // And all of them in the first round of their generation: rounds are
    // distinct per generation.
    let mut rounds: Vec<u64> = symbol_events.iter().map(|e| e.round).collect();
    rounds.sort_unstable();
    rounds.dedup();
    assert_eq!(rounds.len(), 4, "one dispersal round per generation");
}

#[test]
fn diagnosis_traffic_appears_only_under_attack() {
    let cfg = ConsensusConfig::with_gen_bytes(4, 1, 16, 16).unwrap();
    let (honest_trace, _) = traced_run(&cfg, None, false);
    assert!(
        honest_trace.events_with_tag_prefix("consensus.diagnosis").is_empty(),
        "failure-free runs must not pay for diagnosis"
    );
    let (attacked_trace, _) = traced_run(&cfg, Some((0, vec![3])), false);
    assert!(
        !attacked_trace.events_with_tag_prefix("consensus.diagnosis").is_empty(),
        "the attack must trigger diagnosis traffic"
    );
}

#[test]
fn substrates_produce_different_transcripts_same_decision() {
    let cfg = ConsensusConfig::new(4, 1, 48).unwrap();
    let (king, _) = traced_run(&cfg, None, false);
    let (eig, _) = traced_run(&cfg, None, true);
    assert_ne!(king.digest(), eig.digest(), "substrates differ on the wire");
    // The symbol dispersal, however, is identical traffic in both.
    let king_syms = king.events_with_tag_prefix("consensus.matching.symbol").len();
    let eig_syms = eig.events_with_tag_prefix("consensus.matching.symbol").len();
    assert_eq!(king_syms, eig_syms);
}

#[test]
fn csv_export_is_complete() {
    let cfg = ConsensusConfig::new(4, 1, 16).unwrap();
    let (trace, _) = traced_run(&cfg, None, false);
    let csv = trace.to_csv();
    assert_eq!(csv.lines().count(), trace.len() + 1); // header + one line per event
}
