//! Scheduler-equivalence and event-driven network tests.
//!
//! The netsim refactor split the coordinator into two scheduling
//! policies: the legacy `RoundBarrier` and the event-driven
//! virtual-clock scheduler. These tests pin the refactor's central
//! promise — `RoundBarrier` is *byte-identical* to the pre-refactor
//! coordinator — against trace digests captured on the commit before
//! the refactor, and cover the event-driven scheduler's system-level
//! properties: seeded determinism and liveness across a healing WAN
//! partition.

use mvbc_adversary::CorruptSymbolTo;
use mvbc_bsb::{BsbDriver, PhaseKingDriver};
use mvbc_core::{simulate_consensus_traced, ConsensusConfig, NoopHooks, ProtocolHooks};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::trace::TraceSink;
use mvbc_netsim::{
    run_simulation_traced, LinkModel, NetModel, NodeCtx, NodeLogic, Partition, PartitionBehavior,
    SchedulingPolicy, SimConfig, Topology,
};
use mvbc_smr::{
    run_replicated_log_pipelined, simulate_smr_traced, synthetic_workloads, EquivocatingPrimary,
    HonestReplica, KvStore, RunReport, SmrConfig, SmrHooks,
};

/// The CLI's xorshift workload generator (the pre-refactor digests were
/// captured with these inputs).
fn value(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn consensus_digest(n: usize, t: usize, l: usize, seed: u64, corrupt: bool) -> u64 {
    let cfg = ConsensusConfig::new(n, t, l).unwrap();
    let v = value(l, seed);
    let hooks: Vec<Box<dyn ProtocolHooks>> = (0..n)
        .map(|i| {
            if corrupt && i == 0 {
                Box::new(CorruptSymbolTo::new(vec![n - 1])) as Box<dyn ProtocolHooks>
            } else {
                NoopHooks::boxed()
            }
        })
        .collect();
    let drivers: Vec<Box<dyn BsbDriver>> =
        (0..n).map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>).collect();
    let trace = TraceSink::new();
    let _ = simulate_consensus_traced(
        &cfg,
        vec![v; n],
        hooks,
        drivers,
        MetricsSink::new(),
        trace.clone(),
    );
    trace.digest()
}

/// A pipelined replicated-log run under an explicit scheduling policy,
/// mirroring the capture harness that pinned the digests below (the
/// pipelined engine at every depth, including depth 1).
fn smr_digest(policy: SchedulingPolicy, depth: usize, seed: u64, equivocate: bool) -> u64 {
    smr_digest_with_sink(policy, depth, seed, equivocate, MetricsSink::new())
}

fn smr_digest_with_sink(
    policy: SchedulingPolicy,
    depth: usize,
    seed: u64,
    equivocate: bool,
    metrics: MetricsSink,
) -> u64 {
    let n = 4;
    let cfg = SmrConfig::new(n, 1, 8, 2).unwrap().with_pipeline(depth);
    let workloads = synthetic_workloads(n, 2 * cfg.batch_capacity(), seed);
    let trace = TraceSink::new();
    let logics: Vec<NodeLogic<()>> = workloads
        .into_iter()
        .enumerate()
        .map(|(i, commands)| {
            let cfg = cfg.clone();
            let mut hook: Box<dyn SmrHooks> = if equivocate && i == 1 {
                Box::new(EquivocatingPrimary::default())
            } else {
                HonestReplica::boxed()
            };
            Box::new(move |ctx: &mut NodeCtx| {
                let mut store = KvStore::default();
                let mut make_driver = || Box::new(PhaseKingDriver) as Box<dyn BsbDriver>;
                let _ = run_replicated_log_pipelined(
                    ctx,
                    &cfg,
                    commands,
                    hook.as_mut(),
                    &mut make_driver,
                    &mut store,
                );
            }) as NodeLogic<()>
        })
        .collect();
    let _ = run_simulation_traced(
        SimConfig::new(n).with_policy(policy),
        metrics,
        Some(trace.clone()),
        logics,
    );
    trace.digest()
}

/// Pinned against the pre-refactor coordinator: the consensus trace
/// digest is a pure function of the parameters and adversary (the
/// digest covers message shape, not payload bytes, so it is also
/// independent of the seeded inputs).
#[test]
fn round_barrier_consensus_digests_match_the_pre_refactor_coordinator() {
    for seed in [3u64, 11, 29] {
        assert_eq!(
            consensus_digest(4, 1, 48, seed, false),
            0x655d_9f92_3e01_71e5,
            "honest n=4 digest drifted from the pre-refactor coordinator (seed {seed})"
        );
        assert_eq!(
            consensus_digest(7, 2, 96, seed, true),
            0xb6f2_452e_f2a8_e9da,
            "attacked n=7 digest drifted from the pre-refactor coordinator (seed {seed})"
        );
    }
}

/// Pinned against the pre-refactor coordinator: pipelined replicated-log
/// traces under the explicit `RoundBarrier` policy, at depths 1 and 4,
/// honest and under an equivocating primary.
#[test]
fn round_barrier_smr_digests_match_the_pre_refactor_coordinator() {
    let pins = [
        (1usize, false, 0x49b4_b016_b74a_44d6u64),
        (1, true, 0xae4c_13c1_0264_9e13),
        (4, false, 0x9bdc_6f37_60b6_8765),
        (4, true, 0xd763_b919_ca81_5a0d),
    ];
    for seed in [3u64, 11] {
        for &(depth, equivocate, want) in &pins {
            assert_eq!(
                smr_digest(SchedulingPolicy::RoundBarrier, depth, seed, equivocate),
                want,
                "smr digest drifted (depth {depth}, equivocate {equivocate}, seed {seed})"
            );
        }
    }
}

/// Telemetry is observational: attaching a recorder (phase spans, commit
/// histograms, link accounting) must not move a single message, so the
/// pinned `RoundBarrier` trace digests hold with a telemetry sink too.
#[test]
fn round_barrier_digests_are_unchanged_by_telemetry() {
    let pins = [
        (1usize, false, 0x49b4_b016_b74a_44d6u64),
        (1, true, 0xae4c_13c1_0264_9e13),
        (4, false, 0x9bdc_6f37_60b6_8765),
        (4, true, 0xd763_b919_ca81_5a0d),
    ];
    for &(depth, equivocate, want) in &pins {
        let metrics = MetricsSink::with_telemetry();
        assert_eq!(
            smr_digest_with_sink(
                SchedulingPolicy::RoundBarrier,
                depth,
                3,
                equivocate,
                metrics.clone(),
            ),
            want,
            "telemetry perturbed the trace (depth {depth}, equivocate {equivocate})"
        );
        // And the recorder really was live during the run.
        let telemetry = metrics.telemetry().expect("telemetry attached").snapshot();
        assert!(!telemetry.spans.is_empty(), "no phase spans recorded");
        assert!(!telemetry.histograms.is_empty(), "no commit histograms recorded");
    }
}

fn wan_model(seed: u64) -> NetModel {
    NetModel::new(
        LinkModel::Wan { intra: 50, inter: 1000, jitter: 100 },
        Topology::Clusters(vec![2, 2, 2]),
    )
    .with_seed(seed)
}

/// Two event-driven runs with the same jitter seed produce the same
/// trace down to every virtual timestamp; a different seed moves the
/// timestamps (and with them the delivery order) while carrying the
/// same protocol traffic.
#[test]
fn seeded_wan_runs_are_deterministic() {
    let run = |seed: u64| {
        let cfg = SmrConfig::new(6, 1, 6, 2)
            .unwrap()
            .with_pipeline(2)
            .with_policy(SchedulingPolicy::EventDriven(wan_model(seed)));
        let workloads = synthetic_workloads(6, 2, 5);
        let hooks: Vec<Box<dyn SmrHooks>> = (0..6).map(|_| HonestReplica::boxed()).collect();
        let trace = TraceSink::new();
        let _ = simulate_smr_traced(&cfg, workloads, hooks, MetricsSink::new(), Some(trace.clone()));
        trace
    };
    let (a, b) = (run(9), run(9));
    assert_eq!(a.events(), b.events(), "same seed must replay the identical delivery schedule");
    assert_eq!(a.digest(), b.digest());

    // A different jitter seed moves the delivery schedule (so the
    // order-sensitive digest moves too) but carries the same protocol
    // traffic: same message count, same total bits.
    let c = run(10);
    assert_eq!(a.len(), c.len(), "jitter must not add or lose messages");
    assert_eq!(
        a.events().iter().map(|e| e.logical_bits).sum::<u64>(),
        c.events().iter().map(|e| e.logical_bits).sum::<u64>(),
    );
    assert_ne!(
        a.events().iter().map(|e| e.vtime).collect::<Vec<_>>(),
        c.events().iter().map(|e| e.vtime).collect::<Vec<_>>(),
        "a different jitter seed must move the delivery schedule"
    );
}

/// The acceptance scenario: a seeded 3-cluster WAN log with one cluster
/// cut off mid-run (crossings delayed until the cut heals). The
/// synchronous protocol stretches the affected rounds across the cut,
/// so every slot commits, with agreement and validity intact, and the
/// run's final virtual time lands past the heal.
#[test]
fn wan_partition_heals_and_the_log_survives() {
    let topology = Topology::Clusters(vec![2, 2, 2]);
    let (start, heal) = (5_000u64, 60_000u64);
    let model = wan_model(9).with_partition(Partition::of_cluster(
        &topology,
        2,
        start,
        heal,
        PartitionBehavior::Delay,
    ));
    let (n, slots, batch) = (6usize, 6usize, 2usize);
    let cfg = SmrConfig::new(n, 1, slots, batch)
        .unwrap()
        .with_pipeline(2)
        .with_policy(SchedulingPolicy::EventDriven(model));
    let workloads = synthetic_workloads(n, slots.div_ceil(n) * batch, 5);
    let hooks: Vec<Box<dyn SmrHooks>> = (0..n).map(|_| HonestReplica::boxed()).collect();
    let run = simulate_smr_traced(&cfg, workloads.clone(), hooks, MetricsSink::new(), None);

    // Agreement: every replica holds the identical log and state.
    for w in run.reports.windows(2) {
        assert_eq!(w[0].agreed_log(), w[1].agreed_log(), "replicas diverged across the partition");
    }
    assert!(run.stores.windows(2).all(|w| w[0] == w[1]), "state machines diverged");

    // Liveness: all slots committed their full batches — the delayed
    // crossings stretched rounds instead of losing proposals.
    let report = &run.reports[0];
    assert_eq!(report.slots.len(), slots);
    assert_eq!(report.committed_commands, (slots * batch) as u64);
    assert!(report.slots.iter().all(|s| !s.fallback), "a delay-only cut must not cause fallbacks");

    // Validity: each slot committed exactly its primary's proposed batch.
    for s in &report.slots {
        let expected: Vec<_> = workloads[s.primary].iter().take(batch).cloned().collect();
        assert_eq!(s.committed, expected, "slot {} committed foreign commands", s.slot);
    }

    // And the run really did span the cut: it finished after the heal.
    assert!(
        run.vtime >= heal,
        "run finished at virtual time {} before the cut healed at {heal}",
        run.vtime
    );
}

/// The report contains only virtual-time-derived values (wall-clock
/// span durations are deliberately excluded), so a fixed seed yields a
/// byte-identical `RunReport` JSON — and that JSON carries the
/// acceptance headlines: nonzero commit percentiles, phase shares
/// summing to ~100%, per-link delay totals, and the partition's outage
/// window.
#[test]
fn seeded_event_driven_run_reports_are_identical_and_complete() {
    let (start, heal) = (5_000u64, 60_000u64);
    let run_report = || {
        let topology = Topology::Clusters(vec![2, 2, 2]);
        let model = wan_model(9).with_partition(Partition::of_cluster(
            &topology,
            2,
            start,
            heal,
            PartitionBehavior::Delay,
        ));
        let (n, slots, batch) = (6usize, 6usize, 2usize);
        let cfg = SmrConfig::new(n, 1, slots, batch)
            .unwrap()
            .with_pipeline(2)
            .with_policy(SchedulingPolicy::EventDriven(model));
        let workloads = synthetic_workloads(n, slots.div_ceil(n) * batch, 5);
        let hooks: Vec<Box<dyn SmrHooks>> = (0..n).map(|_| HonestReplica::boxed()).collect();
        let metrics = MetricsSink::with_telemetry();
        let run = simulate_smr_traced(&cfg, workloads, hooks, metrics.clone(), None);
        RunReport::build(&cfg, &run, &metrics)
    };

    let (a, b) = (run_report(), run_report());
    assert_eq!(a.to_json(), b.to_json(), "same seed must yield a byte-identical report");

    // The JSON round-trips through the hand-rolled parser. (Float fields
    // are rounded at render time, so the struct comparison is on the
    // re-rendered JSON: parse→render must be a fixed point.)
    let parsed = RunReport::from_json(&a.to_json()).expect("report parses back");
    assert_eq!(parsed.to_json(), a.to_json());

    // Commit-latency percentiles are nonzero (absolute commit vtimes).
    assert!(a.commit_vtime.count > 0, "no commits recorded");
    assert!(a.commit_vtime.p50 > 0 && a.commit_vtime.p99 > 0 && a.commit_vtime.max > 0);

    // Phase shares sum to ~100% and cover the protocol's rounds.
    let share_sum: f64 = a.phases.iter().map(|p| p.share_pct).sum();
    assert!((share_sum - 100.0).abs() < 0.5, "phase shares sum to {share_sum}");
    for phase in ["dispersal", "echo", "vote"] {
        assert!(a.phases.iter().any(|p| p.phase == phase), "missing phase {phase}");
    }

    // Per-link delay totals made it into the top-k table.
    assert!(!a.links.is_empty(), "no link accounting recorded");
    assert!(a.links.iter().all(|l| l.messages > 0 && l.total_delay > 0));

    // The partition's outage window is reported with its affected
    // traffic (delay behaviour: crossings held, none lost).
    assert_eq!(a.outages.len(), 1);
    assert_eq!((a.outages[0].start, a.outages[0].heal), (start, heal));
    assert_eq!(a.outages[0].behavior, "delay");
    assert_eq!(a.outages[0].dropped, 0);
    assert!(a.outages[0].delayed > 0, "no crossings were held by the cut");

    // The per-slot timeline covers every slot.
    assert_eq!(a.timeline.len(), 6);
    assert!(a.timeline.iter().all(|s| s.commands == 2 && !s.fallback));
}
