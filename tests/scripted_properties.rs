//! Property-based tests over the scripted-adversary strategy space and
//! the BSB substrate matrix.
//!
//! The exhaustive sweep (`exhaustive_small_n.rs`) covers every canonical
//! strategy at `n = 4` under the default substrate; these properties
//! sample the same space *randomly* but extend it along the axes the
//! sweep holds fixed: larger networks (`n = 7, t = 2`), random value
//! sizes and contents, random sleeper activation points, and all three
//! `Broadcast_Single_Bit` substrates.

use mvbc_adversary::{ScriptedAdversary, Sleeper, Strategy, SymbolAction, VectorLie};
use mvbc_bsb::{BsbDriver, DolevStrongDriver, EigDriver, PhaseKingDriver};
use mvbc_core::{
    simulate_consensus, simulate_consensus_with, ConsensusConfig, NoopHooks, ProtocolHooks,
};
use mvbc_metrics::MetricsSink;
use proptest::prelude::*;

fn symbol_action() -> impl proptest::strategy::Strategy<Value = SymbolAction> {
    prop_oneof![
        Just(SymbolAction::Honest),
        Just(SymbolAction::Flip),
        Just(SymbolAction::Drop),
    ]
}

fn vector_lie() -> impl proptest::strategy::Strategy<Value = VectorLie> {
    prop_oneof![
        Just(VectorLie::Truthful),
        Just(VectorLie::AllTrue),
        Just(VectorLie::AllFalse),
    ]
}

prop_compose! {
    fn strategy(n: usize)(
        symbols in proptest::collection::vec(symbol_action(), n),
        m_lie in vector_lie(),
        false_detect in any::<bool>(),
        corrupt_rsharp in any::<bool>(),
        trust_lie in vector_lie(),
        bsb_equivocate in any::<bool>(),
        input_flip in any::<bool>(),
    ) -> Strategy {
        Strategy {
            symbols,
            m_lie,
            false_detect,
            corrupt_rsharp,
            trust_lie,
            bsb_equivocate,
            input_flip,
        }
    }
}

/// Asserts the paper's three properties plus the Theorem 1 bounds for a
/// single-faulty-processor run with unanimous honest inputs.
fn assert_invariants(
    cfg: &ConsensusConfig,
    faulty: usize,
    v: &[u8],
    run: &mvbc_core::ConsensusRun,
    label: &str,
) {
    let honest: Vec<usize> = (0..cfg.n).filter(|&i| i != faulty).collect();
    for &h in &honest {
        assert_eq!(run.outputs[h], v, "{label}: node {h} violated validity");
        let rep = &run.reports[h];
        assert!(
            rep.isolated.iter().all(|&i| i == faulty),
            "{label}: honest processor isolated: {:?}",
            rep.isolated
        );
        assert!(
            rep.diagnosis_invocations <= (cfg.t * (cfg.t + 1)) as u64,
            "{label}: diagnosis bound violated ({})",
            rep.diagnosis_invocations
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// n = 7, t = 2: two independently-sampled scripted adversaries.
    #[test]
    fn n7_two_scripted_adversaries(
        strat_a in strategy(7),
        strat_b in strategy(7),
        pair in proptest::sample::subsequence((0..7usize).collect::<Vec<_>>(), 2),
        value_bytes in 5usize..60,
        seed in any::<u8>(),
    ) {
        let (fa, fb) = (pair[0], pair[1]);
        let cfg = ConsensusConfig::new(7, 2, value_bytes).unwrap();
        let v: Vec<u8> = (0..value_bytes).map(|i| seed.wrapping_add(i as u8)).collect();
        let hooks: Vec<Box<dyn ProtocolHooks>> = (0..7)
            .map(|i| {
                if i == fa {
                    Box::new(ScriptedAdversary::new(strat_a.clone())) as Box<dyn ProtocolHooks>
                } else if i == fb {
                    Box::new(ScriptedAdversary::new(strat_b.clone())) as Box<dyn ProtocolHooks>
                } else {
                    NoopHooks::boxed()
                }
            })
            .collect();
        let run = simulate_consensus(&cfg, vec![v.clone(); 7], hooks, MetricsSink::new());
        let honest: Vec<usize> = (0..7).filter(|&i| i != fa && i != fb).collect();
        for &h in &honest {
            prop_assert_eq!(&run.outputs[h], &v, "node {} violated validity", h);
            prop_assert!(
                run.reports[h].isolated.iter().all(|&i| i == fa || i == fb),
                "honest isolated: {:?}", run.reports[h].isolated
            );
            prop_assert!(run.reports[h].diagnosis_invocations <= 6); // t(t+1)
        }
    }

    /// Random sleeper activation: a strategy that wakes mid-run obeys the
    /// same global bounds as one active from the start.
    #[test]
    fn sleeper_activation_preserves_invariants(
        strat in strategy(4),
        start in 0usize..6,
        faulty in 0usize..4,
    ) {
        let cfg = ConsensusConfig::with_gen_bytes(4, 1, 40, 8).unwrap(); // 5 generations
        let v: Vec<u8> = (0..40).map(|i| (i * 3) as u8).collect();
        let hooks: Vec<Box<dyn ProtocolHooks>> = (0..4)
            .map(|i| {
                if i == faulty {
                    Box::new(Sleeper::new(start, ScriptedAdversary::new(strat.clone())))
                        as Box<dyn ProtocolHooks>
                } else {
                    NoopHooks::boxed()
                }
            })
            .collect();
        let run = simulate_consensus(&cfg, vec![v.clone(); 4], hooks, MetricsSink::new());
        assert_invariants(&cfg, faulty, &v, &run, "sleeper");
    }

    /// The substrate matrix under a random strategy: all three substrates
    /// must deliver the identical (correct) decision.
    #[test]
    fn substrate_matrix_agrees(
        strat in strategy(4),
        faulty in 0usize..4,
        value_bytes in 4usize..40,
    ) {
        let cfg = ConsensusConfig::new(4, 1, value_bytes).unwrap();
        let v: Vec<u8> = (0..value_bytes).map(|i| (i * 11 + 2) as u8).collect();
        for (name, drivers) in [
            ("phase-king", (0..4).map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>).collect::<Vec<_>>()),
            ("eig", (0..4).map(|_| Box::new(EigDriver) as Box<dyn BsbDriver>).collect::<Vec<_>>()),
            ("dolev-strong", DolevStrongDriver::fleet(4).into_iter().map(|d| Box::new(d) as Box<dyn BsbDriver>).collect::<Vec<_>>()),
        ] {
            let hooks: Vec<Box<dyn ProtocolHooks>> = (0..4)
                .map(|i| {
                    if i == faulty {
                        Box::new(ScriptedAdversary::new(strat.clone())) as Box<dyn ProtocolHooks>
                    } else {
                        NoopHooks::boxed()
                    }
                })
                .collect();
            let run = simulate_consensus_with(&cfg, vec![v.clone(); 4], hooks, drivers, MetricsSink::new());
            assert_invariants(&cfg, faulty, &v, &run, name);
        }
    }

    /// Divergent honest inputs: consistency must hold for any strategy
    /// (validity is vacuous); honest processors are never isolated.
    #[test]
    fn divergent_inputs_stay_consistent(
        strat in strategy(4),
        faulty in 0usize..4,
        seeds in proptest::array::uniform4(any::<u8>()),
    ) {
        let cfg = ConsensusConfig::with_gen_bytes(4, 1, 16, 16).unwrap();
        let inputs: Vec<Vec<u8>> = (0..4)
            .map(|i| (0..16).map(|b| seeds[i].wrapping_mul(7).wrapping_add(b as u8)).collect())
            .collect();
        let hooks: Vec<Box<dyn ProtocolHooks>> = (0..4)
            .map(|i| {
                if i == faulty {
                    Box::new(ScriptedAdversary::new(strat.clone())) as Box<dyn ProtocolHooks>
                } else {
                    NoopHooks::boxed()
                }
            })
            .collect();
        let run = simulate_consensus(&cfg, inputs, hooks, MetricsSink::new());
        let honest: Vec<usize> = (0..4).filter(|&i| i != faulty).collect();
        for w in honest.windows(2) {
            prop_assert_eq!(&run.outputs[w[0]], &run.outputs[w[1]], "consistency violated");
        }
        for &h in &honest {
            prop_assert!(run.reports[h].isolated.iter().all(|&i| i == faulty));
        }
    }
}
