//! Integration tests of the `mvbc-smr` replicated log: long runs with
//! Byzantine primaries in rotation.

use mvbc_broadcast::attacks::FalseDetector;
use mvbc_broadcast::{BroadcastHooks, NoopBroadcastHooks};
use mvbc_metrics::MetricsSink;
use mvbc_smr::{
    simulate_smr, Command, EquivocatingPrimary, HonestReplica, KvStore, SilentPrimary, SmrConfig,
    SmrHooks, SmrReport,
};

fn workloads(n: usize, per_node: usize) -> Vec<Vec<Command>> {
    (0..n)
        .map(|i| {
            (0..per_node)
                .map(|j| Command {
                    key: (i * per_node + j + 1) as u16,
                    value: (j as u32) << 8 | i as u32,
                })
                .collect()
        })
        .collect()
}

fn hooks_with_byz(n: usize, byz: usize, byz_hooks: impl Fn() -> Box<dyn SmrHooks>) -> Vec<Box<dyn SmrHooks>> {
    (0..n)
        .map(|i| if i == byz { byz_hooks() } else { HonestReplica::boxed() })
        .collect()
}

fn assert_honest_agreement(reports: &[SmrReport], stores: &[KvStore], honest: &[usize]) {
    for w in honest.windows(2) {
        assert_eq!(
            reports[w[0]].agreed_log(),
            reports[w[1]].agreed_log(),
            "replicas {} and {} diverged on the log",
            w[0],
            w[1]
        );
        assert_eq!(
            stores[w[0]], stores[w[1]],
            "replicas {} and {} diverged on state-machine state",
            w[0], w[1]
        );
        assert_eq!(reports[w[0]].digest, reports[w[1]].digest);
    }
}

/// The headline scenario: a >= 100-slot log with a Byzantine primary in
/// the rotation. All fault-free replicas hold identical state, the
/// equivocating slot falls back identically everywhere, and the caught
/// primary never leads again.
#[test]
fn hundred_slot_log_with_equivocating_primary() {
    let n = 4;
    let byz = 2usize;
    let slots = 100;
    let cfg = SmrConfig::new(n, 1, slots, 2).unwrap();
    let hooks = hooks_with_byz(n, byz, || Box::new(EquivocatingPrimary::default()));
    let run = simulate_smr(&cfg, workloads(n, 60), hooks, MetricsSink::new());

    let honest: Vec<usize> = (0..n).filter(|&i| i != byz).collect();
    assert_honest_agreement(&run.reports, &run.stores, &honest);

    let r = &run.reports[honest[0]];
    assert_eq!(r.slots.len(), slots, "the log ran every slot");

    // The Byzantine replica's first primary turn is slot `byz`; it
    // equivocates, is caught, and the slot falls back to the empty batch
    // at every fault-free replica.
    let byz_slot = &r.slots[byz];
    assert_eq!(byz_slot.primary, byz);
    assert!(byz_slot.fallback, "equivocation was not caught");
    assert!(byz_slot.committed.is_empty(), "fallback must commit nothing");
    assert!(byz_slot.diagnosis_ran);
    for &h in &honest {
        let s = &run.reports[h].slots[byz];
        assert!(s.fallback && s.committed.is_empty(), "fallback differs at replica {h}");
    }

    // Caught once, excluded forever: no later slot is led by the caught
    // primary, and every later slot commits normally.
    assert!(r.suspects.contains(&byz));
    assert!(r.slots[byz + 1..].iter().all(|s| s.primary != byz));
    assert_eq!(r.fallback_slots, 1, "only the equivocating slot fell back");

    // Liveness: every slot led by an honest replica with pending commands
    // committed a non-empty batch, and all slots' commands were applied.
    let expected: u64 = r.slots.iter().map(|s| s.committed.len() as u64).sum();
    assert_eq!(r.committed_commands, expected);
    assert!(r.committed_commands > 0);
    assert_eq!(run.stores[honest[0]].len() as u64, r.committed_commands, "distinct keys");
}

#[test]
fn silent_primary_falls_back_and_is_rotated_out() {
    let n = 4;
    let byz = 3usize;
    let cfg = SmrConfig::new(n, 1, 20, 3).unwrap();
    let hooks = hooks_with_byz(n, byz, || Box::new(SilentPrimary));
    let run = simulate_smr(&cfg, workloads(n, 15), hooks, MetricsSink::new());

    let honest: Vec<usize> = (0..n).filter(|&i| i != byz).collect();
    assert_honest_agreement(&run.reports, &run.stores, &honest);
    let r = &run.reports[honest[0]];
    let s = &r.slots[byz];
    assert_eq!(s.primary, byz);
    assert!(s.fallback && s.committed.is_empty());
    assert!(r.suspects.contains(&byz));
    assert!(r.slots[byz + 1..].iter().all(|p| p.primary != byz));
    // Withholding every dispersal burns t+1 edges at once: the silent
    // primary is identified and isolated outright.
    assert!(r.isolated.contains(&byz));
}

/// A Byzantine replica that falsely cries "Detected" during slot 0 is
/// isolated by the no-removal rule. Its isolation removes its edges to
/// everyone — including the honest primary — but that must NOT count as
/// evidence against the primary: the slot commits normally and the
/// primary stays in rotation.
#[test]
fn isolating_a_false_detector_does_not_evict_the_honest_primary() {
    struct FalseDetectorOnSlot0;
    impl SmrHooks for FalseDetectorOnSlot0 {
        fn slot_hooks(&mut self, slot: u64, _i_am_primary: bool) -> Box<dyn BroadcastHooks> {
            if slot == 0 {
                Box::new(FalseDetector)
            } else {
                NoopBroadcastHooks::boxed()
            }
        }
    }

    let n = 4;
    let byz = 2usize;
    let cfg = SmrConfig::new(n, 1, 8, 2).unwrap();
    let hooks = hooks_with_byz(n, byz, || Box::new(FalseDetectorOnSlot0));
    let run = simulate_smr(&cfg, workloads(n, 4), hooks, MetricsSink::new());

    let honest: Vec<usize> = (0..n).filter(|&i| i != byz).collect();
    assert_honest_agreement(&run.reports, &run.stores, &honest);
    let r = &run.reports[honest[0]];
    let s0 = &r.slots[0];
    assert!(s0.diagnosis_ran, "the false detection forced a diagnosis");
    assert!(!s0.fallback, "honest primary's slot must commit");
    assert_eq!(s0.committed.len(), 2);
    assert!(r.isolated.contains(&byz), "the false accuser is identified");
    // The honest primary of slot 0 is still in the rotation.
    assert!(!r.suspects.contains(&0));
    assert!(r.slots.iter().any(|s| s.slot > 0 && s.primary == 0));
}

#[test]
fn byte_budget_caps_batches_and_everything_still_commits() {
    let n = 4;
    // 14-byte budget -> 2 commands per slot even though --batch says 5.
    let cfg = SmrConfig::with_batch_bytes(n, 1, 12, 5, 14).unwrap();
    assert_eq!(cfg.batch_capacity(), 2);
    let hooks = (0..n).map(|_| HonestReplica::boxed()).collect();
    let run = simulate_smr(&cfg, workloads(n, 6), hooks, MetricsSink::new());
    assert_honest_agreement(&run.reports, &run.stores, &(0..n).collect::<Vec<_>>());
    let r = &run.reports[0];
    assert!(r.slots.iter().all(|s| s.committed.len() <= 2));
    assert_eq!(r.committed_commands, 24, "12 slots x 2 commands drained every queue");
    assert_eq!(r.fallback_slots, 0);
}

#[test]
fn slot_scoped_tags_keep_slots_apart_in_the_metrics() {
    let n = 4;
    let cfg = SmrConfig::new(n, 1, 3, 2).unwrap();
    let hooks = (0..n).map(|_| HonestReplica::boxed()).collect();
    let metrics = MetricsSink::new();
    let run = simulate_smr(&cfg, workloads(n, 2), hooks, metrics.clone());
    let snap = metrics.snapshot();
    // Every slot's traffic is tagged with its own scope...
    for slot in 0..3 {
        let prefix = format!("smr.slot{slot}");
        assert!(
            snap.logical_bits_with_prefix(&prefix) > 0,
            "no traffic recorded under {prefix}"
        );
    }
    // ...the hierarchical roll-up covers the whole run, and the per-slot
    // deltas of one replica sum to its total.
    assert_eq!(snap.logical_bits_with_prefix("smr"), snap.total_logical_bits());
    let r = &run.reports[0];
    let own: u64 = r.slots.iter().map(|s| s.bits_sent_by_me).sum();
    assert_eq!(own, snap.logical_bits_by_node(0));
}
