//! Pipelined-vs-sequential equivalence of the `mvbc-smr` replicated log,
//! plus the degraded-mode endgame.
//!
//! The pipelined scheduler's contract is exact: at any depth `W`, under
//! any attack schedule, the *committed* log (per-slot primaries, batches,
//! fallbacks, diagnosis flags, protocol rounds) and the final state
//! digest are identical to a sequential run — pipelining may only cost
//! discarded attempts, never change what commits.

use mvbc_broadcast::attacks::{EquivocatingSource, FramingAccuser};
use mvbc_broadcast::{BroadcastHooks, NoopBroadcastHooks};
use mvbc_metrics::MetricsSink;
use mvbc_smr::{
    simulate_smr, synthetic_workloads, EquivocatingPrimary, HonestReplica, SilentPrimary,
    SmrConfig, SmrHooks, SmrRun,
};

/// Asserts the fault-free replicas of both runs committed the same log,
/// state, and digest — and agree among themselves.
fn assert_equivalent(seq: &SmrRun, pipe: &SmrRun, honest: &[usize], label: &str) {
    for w in honest.windows(2) {
        assert_eq!(
            pipe.reports[w[0]].agreed_log(),
            pipe.reports[w[1]].agreed_log(),
            "{label}: pipelined replicas {} and {} diverged",
            w[0],
            w[1]
        );
    }
    for &h in honest {
        assert_eq!(
            pipe.reports[h].agreed_log(),
            seq.reports[h].agreed_log(),
            "{label}: replica {h} pipelined log differs from sequential"
        );
        assert_eq!(pipe.reports[h].digest, seq.reports[h].digest, "{label}: digest");
        assert_eq!(pipe.stores[h], seq.stores[h], "{label}: state");
        assert_eq!(
            pipe.reports[h].suspects, seq.reports[h].suspects,
            "{label}: suspect sets"
        );
    }
}

/// The satellite suite: seeded schedules with Byzantine primaries in
/// rotation — an always-equivocator, a silent leader, and a *sleeper*
/// that behaves until its second primary turn — each committed at depths
/// W ∈ {1, 2, 4} with identical batches and `KvStore` digests.
#[test]
fn seeded_attack_schedules_commit_identical_logs_at_depths_1_2_4() {
    let n = 4usize;
    let slots = 10usize;
    for seed in 0..6u64 {
        let byz = (seed % n as u64) as usize;
        let kind = seed % 3;
        let mk_hooks = || -> Vec<Box<dyn SmrHooks>> {
            (0..n)
                .map(|i| -> Box<dyn SmrHooks> {
                    if i != byz {
                        return HonestReplica::boxed();
                    }
                    match kind {
                        0 => Box::new(EquivocatingPrimary::default()),
                        1 => Box::new(SilentPrimary),
                        // Sleeper: honest through its first primary turn,
                        // equivocates on its second.
                        _ => Box::new(EquivocatingPrimary {
                            on_slots: Some(vec![byz as u64 + n as u64]),
                        }),
                    }
                })
                .collect()
        };
        let workloads = || synthetic_workloads(n, 6, seed + 1);
        let cfg = SmrConfig::new(n, 1, slots, 2).unwrap();
        let seq = simulate_smr(&cfg, workloads(), mk_hooks(), MetricsSink::new());
        let honest: Vec<usize> = (0..n).filter(|&i| i != byz).collect();
        for w in [2usize, 4] {
            let label = format!("seed {seed} kind {kind} W {w}");
            let pipe_cfg = cfg.clone().with_pipeline(w);
            let pipe = simulate_smr(&pipe_cfg, workloads(), mk_hooks(), MetricsSink::new());
            assert_equivalent(&seq, &pipe, &honest, &label);
        }
    }
}

/// Honest pipelining at n = 7, t = 2: full-depth windows cut the round
/// count by roughly the depth while committing the identical log.
#[test]
fn honest_pipeline_cuts_rounds_without_changing_the_log() {
    let n = 7usize;
    let cfg = SmrConfig::new(n, 2, 12, 4).unwrap();
    let workloads = || synthetic_workloads(n, 8, 3);
    let hooks = |_: ()| (0..n).map(|_| HonestReplica::boxed()).collect();
    let seq = simulate_smr(&cfg, workloads(), hooks(()), MetricsSink::new());
    let pipe_cfg = cfg.clone().with_pipeline(4);
    let pipe = simulate_smr(&pipe_cfg, workloads(), hooks(()), MetricsSink::new());
    let all: Vec<usize> = (0..n).collect();
    assert_equivalent(&seq, &pipe, &all, "honest n=7");
    assert!(pipe.reports.iter().all(|r| r.restarts == 0));
    assert!(
        pipe.rounds * 3 <= seq.rounds,
        "depth 4 should cut rounds by ~4x, got {} vs {}",
        pipe.rounds,
        seq.rounds
    );
}

/// Two simultaneous Byzantine replicas at n = 7, t = 2 (an equivocator
/// and a silent leader), pipelined vs sequential.
#[test]
fn two_byzantine_replicas_pipeline_equivalently() {
    let n = 7usize;
    let byz_eq = 1usize;
    let byz_silent = 4usize;
    let mk_hooks = || -> Vec<Box<dyn SmrHooks>> {
        (0..n)
            .map(|i| -> Box<dyn SmrHooks> {
                if i == byz_eq {
                    Box::new(EquivocatingPrimary::default())
                } else if i == byz_silent {
                    Box::new(SilentPrimary)
                } else {
                    HonestReplica::boxed()
                }
            })
            .collect()
    };
    let cfg = SmrConfig::new(n, 2, 10, 2).unwrap();
    let workloads = || synthetic_workloads(n, 4, 9);
    let seq = simulate_smr(&cfg, workloads(), mk_hooks(), MetricsSink::new());
    let pipe_cfg = cfg.clone().with_pipeline(4);
    let pipe = simulate_smr(&pipe_cfg, workloads(), mk_hooks(), MetricsSink::new());
    let honest: Vec<usize> = (0..n).filter(|&i| i != byz_eq && i != byz_silent).collect();
    assert_equivalent(&seq, &pipe, &honest, "two byzantine");
    // Both attacks were caught and excluded in both modes.
    let r = &seq.reports[honest[0]];
    assert!(r.suspects.contains(&byz_eq) && r.suspects.contains(&byz_silent));
}

/// A colluding team member that frames sitting primaries on scheduled
/// slots (each frame burns one accuser edge — at most `t` safe frames per
/// accuser, and every isolation of a teammate erodes the remaining
/// budget, so all frames are spent *before* any teammate blows up) and
/// equivocates on scheduled primary turns of its own, behaving honestly
/// otherwise.
struct ColludingByzantine {
    /// Slots on which to frame the sitting primary (when not leading).
    frame_slots: Vec<u64>,
    /// Own primary turns on which to equivocate (honest otherwise).
    equivocate_slots: Vec<u64>,
}

impl SmrHooks for ColludingByzantine {
    fn slot_hooks(&mut self, slot: u64, i_am_primary: bool) -> Box<dyn BroadcastHooks> {
        if i_am_primary && self.equivocate_slots.contains(&slot) {
            Box::new(EquivocatingSource)
        } else if !i_am_primary && self.frame_slots.contains(&slot) {
            Box::new(FramingAccuser)
        } else {
            NoopBroadcastHooks::boxed()
        }
    }
}

/// The choreography (n = 10, t = 3, replicas 7-9 colluding): as caught
/// primaries leave the rotation, the eligible pool shrinks
/// deterministically, so the team schedules one catch per honest-led
/// slot — frames on the seven honest primaries (slots 0, 1, 2 by replica
/// 7; slots 3, 6, 10 by replica 8; slot 12 by replica 9), honest
/// behaviour on their own mid-campaign turns (so no early isolation
/// wastes frame budget), then end-game equivocations on slots 13 and 14.
/// After slot 14 every active replica is a suspect: degraded mode.
fn degraded_scenario(pipeline: usize) -> (SmrRun, Vec<usize>) {
    let n = 10usize;
    let t = 3usize;
    let byz: Vec<usize> = vec![7, 8, 9];
    let slots = 18usize;
    let mut cfg = SmrConfig::new(n, t, slots, 1).unwrap();
    cfg = cfg.with_pipeline(pipeline);
    let hooks: Vec<Box<dyn SmrHooks>> = (0..n)
        .map(|i| -> Box<dyn SmrHooks> {
            match i {
                7 => Box::new(ColludingByzantine {
                    frame_slots: vec![0, 1, 2],
                    equivocate_slots: vec![],
                }),
                8 => Box::new(ColludingByzantine {
                    frame_slots: vec![3, 6, 10],
                    equivocate_slots: vec![13],
                }),
                9 => Box::new(ColludingByzantine {
                    frame_slots: vec![12],
                    equivocate_slots: vec![14],
                }),
                _ => HonestReplica::boxed(),
            }
        })
        .collect();
    let run = simulate_smr(&cfg, synthetic_workloads(n, 4, 5), hooks, MetricsSink::new());
    let honest: Vec<usize> = (0..n).filter(|i| !byz.contains(i)).collect();
    (run, honest)
}

#[test]
fn framing_team_drives_the_log_into_safe_degraded_mode() {
    let (run, honest) = degraded_scenario(1);
    for w in honest.windows(2) {
        assert_eq!(run.reports[w[0]].agreed_log(), run.reports[w[1]].agreed_log());
        assert_eq!(run.stores[w[0]], run.stores[w[1]]);
    }
    let r = &run.reports[honest[0]];
    assert_eq!(r.slots.len(), 18, "degraded mode keeps the log live for empty slots");

    // The endgame is reached: every replica still active is a suspect.
    let active: Vec<usize> = (0..10).filter(|v| !r.isolated.contains(v)).collect();
    assert!(
        active.iter().all(|v| r.suspects.contains(v)),
        "not fully degraded: active {active:?}, suspects {:?}",
        r.suspects
    );

    // Degraded slots have the agreed-empty signature (no broadcast ran),
    // and once entered, the mode is permanent.
    let first_degraded = r
        .slots
        .iter()
        .position(|s| s.fallback && !s.diagnosis_ran && s.rounds == 0)
        .expect("the schedule must reach degraded mode");
    for s in &r.slots[first_degraded..] {
        assert!(s.fallback && s.committed.is_empty(), "slot {} broke degraded mode", s.slot);
        assert!(!s.diagnosis_ran && s.rounds == 0, "slot {} ran a broadcast", s.slot);
    }
    assert!(first_degraded <= 15, "degradation must set in once every replica is caught");

    // Safety of the fix: once a replica is caught (its slot fell back
    // with a broadcast), it never again leads a slot that commits.
    for (i, s) in r.slots.iter().enumerate() {
        if s.fallback && s.diagnosis_ran {
            assert!(
                r.slots[i + 1..].iter().all(|later| later.fallback || later.primary != s.primary),
                "caught primary {} led committing slot after slot {}",
                s.primary,
                s.slot
            );
        }
    }
}

#[test]
fn degraded_mode_pipelines_equivalently() {
    let (seq, honest) = degraded_scenario(1);
    let (pipe, _) = degraded_scenario(3);
    assert_equivalent(&seq, &pipe, &honest, "degraded endgame");
}
