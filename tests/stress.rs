//! Stress tests: larger networks, full Byzantine budgets, long
//! multi-generation runs. The fast subset runs in the default suite;
//! the heavyweight configurations are `#[ignore]`d for scheduled runs
//! (`cargo test -p mvbc-systests --test stress -- --ignored`).

use mvbc_adversary::{
    CorruptSymbolTo, FalseDetect, RandomAdversary, Silent, Sleeper, WorstCaseDiagnosis,
};
use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks, ProtocolHooks};
use mvbc_metrics::MetricsSink;

fn value(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        })
        .collect()
}

fn check(cfg: &ConsensusConfig, hooks: Vec<Box<dyn ProtocolHooks>>, faulty: &[usize], seed: u64) {
    let v = value(cfg.value_bytes, seed);
    let run = simulate_consensus(cfg, vec![v.clone(); cfg.n], hooks, MetricsSink::new());
    for id in 0..cfg.n {
        if faulty.contains(&id) {
            continue;
        }
        assert_eq!(run.outputs[id], v, "node {id} violated validity");
        let rep = &run.reports[id];
        assert!(rep.diagnosis_invocations <= (cfg.t * (cfg.t + 1)) as u64);
        assert!(rep.isolated.iter().all(|i| faulty.contains(i)), "honest isolated");
    }
}

#[test]
fn n10_t3_full_team_mixed() {
    let cfg = ConsensusConfig::with_gen_bytes(10, 3, 96, 16).unwrap();
    let mut hooks: Vec<Box<dyn ProtocolHooks>> = (0..10).map(|_| NoopHooks::boxed()).collect();
    hooks[1] = Box::new(CorruptSymbolTo::new(vec![9]));
    hooks[4] = Box::new(FalseDetect);
    hooks[7] = Box::new(Silent);
    check(&cfg, hooks, &[1, 4, 7], 0xAB);
}

#[test]
fn n13_t4_worst_case_team_long_run() {
    // 16 generations against the orchestrated worst-case colluders: the
    // t(t+1) = 20 budget must hold and the tail generations must run
    // attack-free after isolation.
    let cfg = ConsensusConfig::with_gen_bytes(13, 4, 16 * 10, 10).unwrap();
    let team: Vec<usize> = vec![0, 1, 2, 3];
    let mut hooks: Vec<Box<dyn ProtocolHooks>> = (0..13).map(|_| NoopHooks::boxed()).collect();
    for &f in &team {
        hooks[f] = Box::new(WorstCaseDiagnosis::new(team.clone()));
    }
    check(&cfg, hooks, &team, 0xCD);
}

#[test]
fn n7_t2_staggered_sleepers() {
    // Two sleepers waking at different generations: the combined budget
    // across both takeovers is still t(t+1).
    let cfg = ConsensusConfig::with_gen_bytes(7, 2, 10 * 15, 15).unwrap();
    let mut hooks: Vec<Box<dyn ProtocolHooks>> = (0..7).map(|_| NoopHooks::boxed()).collect();
    hooks[2] = Box::new(Sleeper::new(2, CorruptSymbolTo::new(vec![6])));
    hooks[5] = Box::new(Sleeper::new(5, CorruptSymbolTo::new(vec![0])));
    check(&cfg, hooks, &[2, 5], 0xEF);
}

#[test]
fn n7_t2_randomized_pair_many_seeds() {
    for seed in 0..8u64 {
        let cfg = ConsensusConfig::with_gen_bytes(7, 2, 60, 15).unwrap();
        let mut hooks: Vec<Box<dyn ProtocolHooks>> =
            (0..7).map(|_| NoopHooks::boxed()).collect();
        hooks[0] = Box::new(RandomAdversary::new(seed, 0.4));
        hooks[3] = Box::new(RandomAdversary::new(seed ^ 0xFFFF, 0.4));
        check(&cfg, hooks, &[0, 3], seed);
    }
}

#[test]
#[ignore = "heavyweight: n = 19, t = 6 worst-case colluders (~minutes)"]
fn n19_t6_worst_case_team() {
    let cfg = ConsensusConfig::with_gen_bytes(19, 6, 44 * 14, 14).unwrap();
    let team: Vec<usize> = (0..6).collect();
    let mut hooks: Vec<Box<dyn ProtocolHooks>> = (0..19).map(|_| NoopHooks::boxed()).collect();
    for &f in &team {
        hooks[f] = Box::new(WorstCaseDiagnosis::new(team.clone()));
    }
    check(&cfg, hooks, &team, 0x19);
}

#[test]
#[ignore = "heavyweight: 1 MiB value end-to-end"]
fn one_mebibyte_value() {
    let l = 1 << 20;
    let cfg = ConsensusConfig::new(4, 1, l).unwrap();
    let mut hooks: Vec<Box<dyn ProtocolHooks>> = (0..4).map(|_| NoopHooks::boxed()).collect();
    hooks[2] = Box::new(CorruptSymbolTo::for_first_generations(vec![3], 4));
    check(&cfg, hooks, &[2], 0x1AB);
}
