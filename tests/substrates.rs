//! Integration tests for the `Broadcast_Single_Bit` substitution seam
//! (paper §4): the full multi-valued consensus protocol must satisfy
//! Termination / Consistency / Validity under every [`BsbDriver`]
//! substrate, honest or attacked, and all substrates must decide the
//! *same* values (they are interchangeable black boxes of cost `B`).

use mvbc_adversary::{CorruptSymbolTo, FalseDetect, LieMVector, ShiftedInput};
use mvbc_bsb::{BsbDriver, DolevStrongDriver, EigDriver, PhaseKingDriver};
use mvbc_core::{
    simulate_consensus_with, ConsensusConfig, ConsensusRun, NoopHooks, ProtocolHooks,
};
use mvbc_metrics::MetricsSink;

/// The three substrate fleets for an `n`-processor network.
fn fleets(n: usize) -> Vec<(&'static str, Vec<Box<dyn BsbDriver>>)> {
    vec![
        (
            "phase-king",
            (0..n).map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>).collect(),
        ),
        (
            "eig",
            (0..n).map(|_| Box::new(EigDriver) as Box<dyn BsbDriver>).collect(),
        ),
        (
            "dolev-strong",
            DolevStrongDriver::fleet(n)
                .into_iter()
                .map(|d| Box::new(d) as Box<dyn BsbDriver>)
                .collect(),
        ),
    ]
}

fn run_with(
    cfg: &ConsensusConfig,
    inputs: Vec<Vec<u8>>,
    hooks: Vec<Box<dyn ProtocolHooks>>,
    drivers: Vec<Box<dyn BsbDriver>>,
) -> ConsensusRun {
    simulate_consensus_with(cfg, inputs, hooks, drivers, MetricsSink::new())
}

fn value(seed: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| seed.wrapping_add(i as u8).wrapping_mul(31)).collect()
}

#[test]
fn honest_unanimous_all_substrates() {
    let cfg = ConsensusConfig::new(4, 1, 96).unwrap();
    let v = value(3, 96);
    for (name, drivers) in fleets(4) {
        let hooks = (0..4).map(|_| NoopHooks::boxed()).collect();
        let run = run_with(&cfg, vec![v.clone(); 4], hooks, drivers);
        for (i, out) in run.outputs.iter().enumerate() {
            assert_eq!(out, &v, "{name}: node {i} violated validity");
        }
    }
}

#[test]
fn honest_divergent_inputs_default_consistently() {
    // Fault-free inputs differ: line 1(f) must fire identically under
    // every substrate (default decision everywhere).
    let cfg = ConsensusConfig::new(4, 1, 64).unwrap();
    for (name, drivers) in fleets(4) {
        let inputs: Vec<Vec<u8>> = (0..4).map(|i| value(i as u8, 64)).collect();
        let hooks = (0..4).map(|_| NoopHooks::boxed()).collect();
        let run = run_with(&cfg, inputs, hooks, drivers);
        for rep in &run.reports {
            assert!(rep.defaulted, "{name}: expected the default decision");
        }
        assert_eq!(run.outputs[0], cfg.default_value(), "{name}");
        assert!(
            run.outputs.windows(2).all(|w| w[0] == w[1]),
            "{name}: consistency violated"
        );
    }
}

#[test]
fn corrupt_symbol_attack_all_substrates() {
    // A Byzantine symbol corruption forces the diagnosis stage; honest
    // processors must still decide the common value, under every
    // substrate.
    let cfg = ConsensusConfig::new(4, 1, 64).unwrap();
    let v = value(7, 64);
    for (name, drivers) in fleets(4) {
        let hooks: Vec<Box<dyn ProtocolHooks>> = vec![
            Box::new(CorruptSymbolTo::new(vec![3])),
            NoopHooks::boxed(),
            NoopHooks::boxed(),
            NoopHooks::boxed(),
        ];
        let run = run_with(&cfg, vec![v.clone(); 4], hooks, drivers);
        for honest in 1..4 {
            assert_eq!(run.outputs[honest], v, "{name}: node {honest}");
        }
        assert!(
            run.reports[1].diagnosis_invocations >= 1,
            "{name}: attack should have triggered diagnosis"
        );
    }
}

#[test]
fn false_detect_attack_all_substrates() {
    let cfg = ConsensusConfig::new(4, 1, 48).unwrap();
    let v = value(11, 48);
    for (name, drivers) in fleets(4) {
        let hooks: Vec<Box<dyn ProtocolHooks>> = vec![
            NoopHooks::boxed(),
            Box::new(FalseDetect),
            NoopHooks::boxed(),
            NoopHooks::boxed(),
        ];
        let run = run_with(&cfg, vec![v.clone(); 4], hooks, drivers);
        for honest in [0usize, 2, 3] {
            assert_eq!(run.outputs[honest], v, "{name}: node {honest}");
        }
    }
}

#[test]
fn lie_m_vector_attack_all_substrates() {
    let cfg = ConsensusConfig::new(7, 2, 70).unwrap();
    let v = value(13, 70);
    for (name, drivers) in fleets(7) {
        let mut hooks: Vec<Box<dyn ProtocolHooks>> =
            (0..7).map(|_| NoopHooks::boxed()).collect();
        hooks[2] = Box::new(LieMVector { claim: true });
        hooks[5] = Box::new(ShiftedInput);
        let run = run_with(&cfg, vec![v.clone(); 7], hooks, drivers);
        for honest in [0usize, 1, 3, 4, 6] {
            assert_eq!(run.outputs[honest], v, "{name}: node {honest}");
        }
    }
}

#[test]
fn substrates_decide_identical_values_multi_generation() {
    // Several generations with one shifted-input faulty processor: the
    // decided value must be byte-identical across substrates.
    let cfg = ConsensusConfig::with_gen_bytes(4, 1, 60, 12).unwrap();
    let v = value(29, 60);
    let mut decisions: Vec<Vec<u8>> = Vec::new();
    for (_name, drivers) in fleets(4) {
        let mut hooks: Vec<Box<dyn ProtocolHooks>> =
            (0..4).map(|_| NoopHooks::boxed()).collect();
        hooks[3] = Box::new(ShiftedInput);
        let run = run_with(&cfg, vec![v.clone(); 4], hooks, drivers);
        decisions.push(run.outputs[0].clone());
        assert!(run.outputs[..3].windows(2).all(|w| w[0] == w[1]));
    }
    assert!(
        decisions.windows(2).all(|w| w[0] == w[1]),
        "substrates disagreed: {decisions:?}"
    );
}

#[test]
fn round_profiles_differ_but_results_agree() {
    // EIG takes fewer rounds than Phase-King; Dolev-Strong fewer still.
    // (This pins the cost-profile claim in the driver docs.)
    let cfg = ConsensusConfig::new(4, 1, 32).unwrap();
    let v = value(17, 32);
    let mut rounds = Vec::new();
    for (_name, drivers) in fleets(4) {
        let hooks = (0..4).map(|_| NoopHooks::boxed()).collect();
        let run = run_with(&cfg, vec![v.clone(); 4], hooks, drivers);
        assert_eq!(run.outputs[0], v);
        rounds.push(run.rounds);
    }
    let (king, eig, ds) = (rounds[0], rounds[1], rounds[2]);
    assert!(eig < king, "EIG should need fewer rounds: {eig} vs {king}");
    assert!(ds <= eig, "Dolev-Strong should need the fewest rounds: {ds} vs {eig}");
}

#[test]
fn broadcast_honest_all_substrates() {
    // The §4 broadcast extension is also substrate-parameterised.
    use mvbc_broadcast::{simulate_broadcast_with, BroadcastConfig, NoopBroadcastHooks};
    let cfg = BroadcastConfig::new(4, 1, 0, 96).unwrap();
    let v = value(31, 96);
    for (name, drivers) in fleets(4) {
        let hooks = (0..4).map(|_| NoopBroadcastHooks::boxed()).collect();
        let run = simulate_broadcast_with(&cfg, v.clone(), hooks, drivers, MetricsSink::new());
        for (i, out) in run.outputs.iter().enumerate() {
            assert_eq!(out, &v, "{name}: node {i} delivered wrong value");
        }
    }
}

#[test]
fn broadcast_equivocating_source_all_substrates() {
    use mvbc_broadcast::attacks::EquivocatingSource;
    use mvbc_broadcast::{simulate_broadcast_with, BroadcastConfig, BroadcastHooks, NoopBroadcastHooks};
    let cfg = BroadcastConfig::new(4, 1, 1, 64).unwrap();
    let v = value(37, 64);
    for (name, drivers) in fleets(4) {
        let mut hooks: Vec<Box<dyn BroadcastHooks>> =
            (0..4).map(|_| NoopBroadcastHooks::boxed()).collect();
        hooks[1] = Box::new(EquivocatingSource);
        let run = simulate_broadcast_with(&cfg, v.clone(), hooks, drivers, MetricsSink::new());
        let honest = [0usize, 2, 3];
        for w in honest.windows(2) {
            assert_eq!(
                run.outputs[w[0]], run.outputs[w[1]],
                "{name}: broadcast agreement violated under equivocation"
            );
        }
    }
}

#[test]
fn dolev_strong_substitution_cost_is_measured() {
    // The §4 substitution changes only the B-priced control traffic; the
    // symbol traffic (the L-linear term) is substrate-independent.
    let cfg = ConsensusConfig::new(4, 1, 256).unwrap();
    let v = value(23, 256);
    let mut totals = Vec::new();
    for (_name, drivers) in fleets(4) {
        let metrics = MetricsSink::new();
        let hooks = (0..4).map(|_| NoopHooks::boxed()).collect();
        let run = simulate_consensus_with(&cfg, vec![v.clone(); 4], hooks, drivers, metrics.clone());
        assert_eq!(run.outputs[0], v);
        let snap = metrics.snapshot();
        totals.push(snap.total_logical_bits());
    }
    // All totals include the identical symbol traffic, so every pair is
    // within the control-traffic delta — and none is zero.
    assert!(totals.iter().all(|&b| b > 0));
}
